"""The Spectral Bloom Filter (paper §2).

An SBF replaces the Bloom filter's bit vector with a vector ``C`` of ``m``
counters addressed by ``k`` hash functions.  Inserting an item increases its
``k`` counters; the frequency estimate for a query item is derived from
those counters by the configured *method*:

- ``"ms"`` — Minimum Selection (§2.2): plain increments, estimate = minimum
  counter.  Errors are one-sided (``estimate >= true``) and occur with the
  classic Bloom-error probability ``E_b``.
- ``"mi"`` — Minimal Increase (§3.2): on insert only the minimal counters
  advance; roughly ``k`` times fewer errors on insert-only streams, but
  deletions produce false negatives (Figure 8).
- ``"rm"`` — Recurring Minimum (§3.3): single-minimum items are shadowed in
  a secondary SBF; supports deletions with accuracy well beyond MS.
- ``"trm"`` — Trapping Recurring Minimum (§3.3.1): RM plus per-counter traps
  that repair late-detected contamination.

Example:
    >>> from repro.core import SpectralBloomFilter
    >>> sbf = SpectralBloomFilter(m=1000, k=5, seed=42)
    >>> for item in ["a", "b", "a", "c", "a"]:
    ...     sbf.insert(item)
    >>> sbf.query("a")
    3
    >>> sbf.query("zzz")          # non-member -> 0 (w.h.p.)
    0
    >>> sbf.contains("a", threshold=2)
    True
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.core.params import bloom_error, optimal_k, optimal_m
from repro.hashing.families import HashFamily, make_family
from repro.storage.backends import CounterBackend, make_backend


class SpectralBloomFilter:
    """A multiset synopsis supporting frequency queries with one-sided error.

    Args:
        m: number of counters.
        k: number of hash functions.
        method: maintenance/lookup scheme — ``"ms"``, ``"mi"``, ``"rm"``,
            ``"trm"`` or a :class:`~repro.core.methods.Method` subclass.
        seed: master seed; hash functions and any auxiliary structures are
            derived from it deterministically.
        hash_family: ``"modmul"`` (the paper's scheme, default),
            ``"multiply-shift"``, ``"tabulation"``, ``"double"`` or a
            :class:`~repro.hashing.families.HashFamily` instance.
        backend: counter storage — ``"array"`` (default), ``"numpy"``
            (vectorised counters, the bulk-operation backend),
            ``"compact"`` (String-Array Index, §4) or ``"stream"``
            (§4.5).
        backend_options: extra keyword arguments for the backend.
        method_options: extra keyword arguments for the method (e.g.
            ``secondary_m`` / ``use_marker`` for Recurring Minimum).
    """

    def __init__(self, m: int, k: int, *, method: object = "ms",
                 seed: int = 0, hash_family: object = "modmul",
                 backend: object = "array",
                 backend_options: Mapping | None = None,
                 method_options: Mapping | None = None):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.m = int(m)
        self.k = int(k)
        self.seed = int(seed)
        self.family: HashFamily = make_family(hash_family, self.m, self.k,
                                              seed=self.seed)
        self.counters: CounterBackend = make_backend(
            backend, self.m, **dict(backend_options or {}))
        # Total multiplicity currently represented (the paper's N = sum f_x);
        # needed by the §3.1 unbiased estimator and for sizing diagnostics.
        self.total_count = 0
        from repro.core.methods import make_method
        self.method = make_method(method, self, **dict(method_options or {}))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_items(cls, n: int, error_rate: float = 0.01,
                  **kwargs) -> "SpectralBloomFilter":
        """Size a filter for *n* expected distinct items at *error_rate*."""
        m = optimal_m(n, error_rate)
        k = optimal_k(m, n)
        return cls(m, k, **kwargs)

    @classmethod
    def from_counts(cls, counts: Mapping[object, int],
                    error_rate: float = 0.01,
                    **kwargs) -> "SpectralBloomFilter":
        """Build a filter holding a whole multiset given as ``{key: f}``."""
        sbf = cls.for_items(max(1, len(counts)), error_rate, **kwargs)
        sbf.update(counts)
        return sbf

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def indices(self, key: object) -> tuple[int, ...]:
        """The ``k`` counter positions of *key*."""
        return tuple(self.family.indices(key))

    def counter_values(self, key: object) -> tuple[int, ...]:
        """The sequence ``v_x`` of *key*'s counter values (§2.2)."""
        get = self.counters.get
        return tuple(get(i) for i in self.indices(key))

    def min_counter(self, key: object) -> int:
        """``m_x`` — the minimal counter value of *key* (§2.2)."""
        return min(self.counter_values(key))

    def insert(self, key: object, count: int = 1) -> None:
        """Record *count* occurrences of *key*."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self.method.insert(key, count)
        self.total_count += count

    def delete(self, key: object, count: int = 1) -> None:
        """Remove *count* occurrences of *key* (assumed present, §2.2)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self.method.delete(key, count)
        self.total_count -= count

    def update(self, items: Mapping[object, int] | Iterable) -> None:
        """Bulk insert: a ``{key: count}`` mapping or an iterable of keys.

        Routed through :meth:`insert_many`, so dict/stream construction
        gets the vectorised kernels for free.
        """
        if isinstance(items, Mapping):
            self.insert_many(list(items.keys()), list(items.values()))
        elif isinstance(items, (list, tuple, np.ndarray)):
            self.insert_many(items)
        else:
            self.insert_many(list(items))

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    def _prepare_batch(self, keys, counts):
        """Normalise a key/count batch: counts array, zero filtering.

        Returns ``(keys, counts, n)`` with ``counts`` an int64 array and
        zero-count entries dropped (the scalar path skips them before the
        method sees them — for RM a zero insert must not touch the
        secondary).  Raises on negative counts, like the scalar path.
        """
        if isinstance(keys, np.ndarray):
            n = int(keys.shape[0])
        else:
            if not isinstance(keys, (list, tuple)):
                keys = list(keys)
            n = len(keys)
        if counts is None:
            counts = np.ones(n, dtype=np.int64)
        elif isinstance(counts, int):
            if counts < 0:
                raise ValueError(f"count must be >= 0, got {counts}")
            counts = np.full(n, counts, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (n,):
                raise ValueError(
                    f"expected {n} counts, got shape {counts.shape}")
            if counts.size and int(counts.min()) < 0:
                raise ValueError(
                    f"count must be >= 0, got {int(counts.min())}")
        if counts.size and int(counts.min()) == 0:
            keep = counts > 0
            counts = counts[keep]
            if isinstance(keys, np.ndarray):
                keys = keys[keep]
            else:
                keys = [key for key, flag in zip(keys, keep.tolist())
                        if flag]
            n = int(counts.size)
        return keys, counts, n

    def insert_many(self, keys, counts=None) -> None:
        """Record a whole batch: ``counts[j]`` occurrences of ``keys[j]``.

        Equivalent to ``for key, c in zip(keys, counts): insert(key, c)``
        — the bulk kernels are proven bit-identical per method (see
        :mod:`repro.core.kernels`) — but vectorised: one hashing pass and
        aggregated counter scatters instead of per-key Python calls.

        Args:
            keys: a sequence (or numpy array) of keys.
            counts: per-key multiplicities — ``None`` (one each), a single
                int applied to every key, or a sequence aligned with
                *keys*.  Zero counts are skipped; negatives raise.
        """
        from repro.hashing.vectorized import canonicalize_many, matrix_for
        keys, counts, n = self._prepare_batch(keys, counts)
        if n == 0:
            return
        canon = canonicalize_many(keys)
        matrix = matrix_for(self.family, canon)
        self.method.insert_many(keys, counts, canon, matrix)
        self.total_count += int(counts.sum())

    def delete_many(self, keys, counts=None) -> None:
        """Remove a batch of occurrences (each key assumed present, §2.2).

        Bit-identical to the scalar delete loop on success.  If the batch
        would drive a counter negative, array-shaped backends raise
        *before* applying anything (the scalar loop would also have
        raised, but after partially applying — the all-or-nothing bulk
        behaviour is strictly safer); loop-fallback backends mirror the
        scalar partial-application failure mode.
        """
        from repro.hashing.vectorized import canonicalize_many, matrix_for
        keys, counts, n = self._prepare_batch(keys, counts)
        if n == 0:
            return
        canon = canonicalize_many(keys)
        matrix = matrix_for(self.family, canon)
        self.method.delete_many(keys, counts, canon, matrix)
        self.total_count -= int(counts.sum())

    def query_many(self, keys) -> np.ndarray:
        """Frequency estimates for a key batch, as an int64 array.

        ``query_many(keys)[j] == query(keys[j])`` for every j and method.
        """
        from repro.hashing.vectorized import canonicalize_many, matrix_for
        if not isinstance(keys, (list, tuple, np.ndarray)):
            keys = list(keys)
        if len(keys) == 0:
            return np.empty(0, dtype=np.int64)
        canon = canonicalize_many(keys)
        matrix = matrix_for(self.family, canon)
        return self.method.estimate_many(keys, canon, matrix)

    def query(self, key: object) -> int:
        """Frequency estimate ``f̂_x`` for *key* (method-dependent).

        For MS/RM the estimate is one-sided: ``f̂_x >= f_x`` always, with
        ``P(f̂_x != f_x)`` at most the Bloom error (Claim 1 / §3.3).
        """
        return self.method.estimate(key)

    def estimate(self, key: object) -> int:
        """Alias for :meth:`query`."""
        return self.query(key)

    def contains(self, key: object, threshold: int = 1) -> bool:
        """Spectral membership: is ``f_x >= threshold``? (§2.2).

        For ``threshold=1`` this is exactly Bloom-filter membership; larger
        thresholds give the ad-hoc filtering the paper is named after.
        False positives only (for MS/RM).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        return self.query(key) >= threshold

    def __contains__(self, key: object) -> bool:
        return self.contains(key, 1)

    # ------------------------------------------------------------------
    # multiset algebra (§2.2 "Distributed processing" / "Queries over joins")
    # ------------------------------------------------------------------
    def is_compatible(self, other: "SpectralBloomFilter") -> bool:
        """True if union/multiplication with *other* is meaningful."""
        return (isinstance(other, SpectralBloomFilter)
                and self.family.is_compatible(other.family))

    def _require_compatible(self, other: "SpectralBloomFilter",
                            operation: str) -> None:
        if not self.is_compatible(other):
            raise ValueError(
                f"{operation} requires identical parameters and hash "
                f"functions (m, k, seed, family); got "
                f"{self.family!r} vs {getattr(other, 'family', other)!r}"
            )

    def union(self, other: "SpectralBloomFilter") -> "SpectralBloomFilter":
        """Multiset union: counter vectors are added (§2.2).

        Both filters must share parameters and hash functions.  The result
        uses this filter's method; Recurring Minimum merges its secondary
        structures as well.
        """
        self._require_compatible(other, "union")
        result = self._spawn_like()
        for i in range(self.m):
            result.counters.set(i, self.counters.get(i)
                                + other.counters.get(i))
        result.total_count = self.total_count + other.total_count
        result.method.merge_from(self.method, other.method)
        return result

    def multiply(self, other: "SpectralBloomFilter") -> "SpectralBloomFilter":
        """Join multiplication: counters multiplied pointwise (§2.2).

        The result represents the multiset of the equi-join of the two
        multisets: for a key x, ``min_i(a_i * b_i) >= f^a_x * f^b_x`` with
        one-sided error, enabling Spectral Bloomjoins (§5.3).  The result
        always uses Minimum Selection.
        """
        self._require_compatible(other, "multiplication")
        result = SpectralBloomFilter(
            self.m, self.k, method="ms", seed=self.seed,
            hash_family=type(self.family), backend="array")
        total = 0
        for i in range(self.m):
            value = self.counters.get(i) * other.counters.get(i)
            result.counters.set(i, value)
            total += value
        result.total_count = total // max(1, self.k)
        return result

    def difference(self, other: "SpectralBloomFilter",
                   ) -> "SpectralBloomFilter":
        """Multiset difference: counter vectors are subtracted.

        The inverse of :meth:`union` for the batched sliding-window
        pattern: build an SBF over the expiring batch and subtract it,
        instead of deleting item by item.  *other* must represent a
        sub-multiset of this filter (same insertion history for the
        removed items), otherwise counters would go negative.

        Raises:
            ValueError: on incompatible filters or if any counter would
                become negative (i.e. *other* is not a sub-multiset).
        """
        self._require_compatible(other, "difference")
        result = SpectralBloomFilter(
            self.m, self.k, method="ms", seed=self.seed,
            hash_family=type(self.family), backend="array")
        for i in range(self.m):
            value = self.counters.get(i) - other.counters.get(i)
            if value < 0:
                raise ValueError(
                    "difference requires the subtrahend to be a "
                    f"sub-multiset (counter {i} would become {value})")
            result.counters.set(i, value)
        result.total_count = self.total_count - other.total_count
        return result

    def __add__(self, other: "SpectralBloomFilter") -> "SpectralBloomFilter":
        return self.union(other)

    def __sub__(self, other: "SpectralBloomFilter") -> "SpectralBloomFilter":
        return self.difference(other)

    def __mul__(self, other: "SpectralBloomFilter") -> "SpectralBloomFilter":
        return self.multiply(other)

    def _spawn_like(self) -> "SpectralBloomFilter":
        """A fresh empty filter with identical configuration.

        The live backend's construction options travel along (via
        :meth:`CounterBackend.options`), so a union of stream/compact-backed
        filters keeps the codec and slack tuning instead of silently
        reverting to backend defaults.
        """
        return SpectralBloomFilter(
            self.m, self.k, method=type(self.method), seed=self.seed,
            hash_family=type(self.family), backend=type(self.counters),
            backend_options=self.counters.options(),
            method_options=self.method.options())

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def gamma(self) -> float:
        """Observed load hint ``N*k/m`` based on total multiplicity.

        Note the paper's gamma uses *distinct* items; callers tracking
        distinct counts should use :func:`repro.core.params.gamma`.
        """
        return self.total_count * self.k / self.m

    def expected_bloom_error(self, n_distinct: int) -> float:
        """``E_b`` for this filter's (m, k) at *n_distinct* items (§2.1)."""
        return bloom_error(n_distinct, self.k, self.m)

    def storage_bits(self) -> int:
        """Total model size in bits: counters plus method side structures."""
        return self.counters.storage_bits() + self.method.storage_bits()

    def fill_ratio(self) -> float:
        """Fraction of counters that are non-zero."""
        nonzero = sum(1 for c in self.counters if c)
        return nonzero / self.m

    def check_integrity(self) -> list[str]:
        """Audit the filter's internal invariants; returns found issues.

        Intended for receivers of a deserialised filter (Bloomjoin /
        Summary-Cache peers): a checksum proves the *frame* arrived intact,
        this audit proves the *structure* is self-consistent before it is
        trusted.  Checks counter non-negativity and dimensions, then the
        method-specific counter-sum vs ``total_count`` invariant (exact
        ``k*N`` for MS and the RM primary, the ``<= k*N`` bound for MI)
        and Recurring Minimum's secondary/marker consistency.

        Returns an empty list when every invariant holds.
        """
        issues = []
        if len(self.counters) != self.m:
            issues.append(f"backend holds {len(self.counters)} counters "
                          f"but m = {self.m}")
        for i, value in enumerate(self.counters):
            if value < 0:
                issues.append(f"counter {i} is negative ({value})")
                break
        if self.total_count < 0 and self.method.name != "mi":
            issues.append(f"total_count is negative ({self.total_count})")
        issues.extend(self.method.integrity_issues())
        return issues

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpectralBloomFilter(m={self.m}, k={self.k}, "
                f"method={self.method.name!r}, N={self.total_count})")

    def __iter__(self) -> Iterator[int]:
        """Iterate over raw counter values (mainly for tests/serialisation)."""
        return iter(self.counters)
