"""Finite-universe Zipfian distributions (paper §2.3).

"In a Zipfian distribution, the probability of the i-th most frequent item
in the data-set to appear is equal to ``p_i = c / i^z``, with c being some
normalization constant, and z is the Zipf parameter, or skew of the data."

``z = 0`` degenerates to the uniform distribution, matching the paper's
"skew 0" experiment lines.  Sampling is numpy-backed and fully seeded.
"""

from __future__ import annotations

import numpy as np


class ZipfDistribution:
    """Zipf law over the ranks ``1 .. n`` with skew ``z >= 0``.

    Items are the integers ``0 .. n-1`` ordered by decreasing probability
    (item 0 is the most frequent), matching the paper's "ordered by
    descending frequency" convention.
    """

    def __init__(self, n: int, z: float):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if z < 0:
            raise ValueError(f"skew must be >= 0, got {z}")
        self.n = int(n)
        self.z = float(z)
        ranks = np.arange(1, self.n + 1, dtype=np.float64)
        weights = ranks ** (-self.z)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)

    def pmf(self, i: int) -> float:
        """Probability of the item with rank *i* (0-based)."""
        return float(self._pmf[i])

    def probabilities(self) -> np.ndarray:
        """The full probability vector (a copy)."""
        return self._pmf.copy()

    def expected_frequency(self, i: int, total: int) -> float:
        """Expected count of rank-*i* item in a sample of size *total*
        (the paper's ``f_i = N c / i^z``)."""
        return total * self.pmf(i)

    def sample(self, size: int, seed: int = 0) -> np.ndarray:
        """Draw *size* items i.i.d. (array of 0-based ranks)."""
        rng = np.random.default_rng(seed)
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfDistribution(n={self.n}, z={self.z})"


def zipf_frequencies(n: int, total: int, z: float) -> list[int]:
    """Deterministic (expected) frequency vector: rank i gets ``~N c/i^z``.

    Rounds expected counts and fixes the remainder onto the head item so
    the result sums exactly to *total*.  Used where the paper assumes exact
    Zipfian frequencies (the §2.3 analysis) rather than a random sample.
    """
    dist = ZipfDistribution(n, z)
    counts = [int(round(total * p)) for p in dist.probabilities()]
    drift = total - sum(counts)
    counts[0] = max(0, counts[0] + drift)
    return counts


def zipf_multiset(n: int, total: int, z: float,
                  seed: int = 0) -> dict[int, int]:
    """Sample a multiset: ``{item: frequency}`` over *n* possible items.

    Items that never appear in the sample are absent from the mapping, so
    ``len(result)`` is the realised number of distinct items (<= n).
    """
    dist = ZipfDistribution(n, z)
    sample = dist.sample(total, seed=seed)
    items, counts = np.unique(sample, return_counts=True)
    return {int(x): int(f) for x, f in zip(items, counts)}
