"""Stream workloads for the §6 experiments.

Three stream shapes the paper evaluates:

- plain random-order insertion streams (§6.1);
- phase workloads alternating insert bursts with "delete 5% of the items
  entirely" phases (§6.2, Figure 8);
- sliding windows that track only the most recent ``window`` items, deleting
  expiring ones explicitly (§6.2, Figure 9).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.data.zipf import ZipfDistribution


def stream_from_counts(counts: Mapping[object, int],
                       seed: int = 0) -> list:
    """Expand a ``{key: frequency}`` multiset into a shuffled stream."""
    out: list = []
    for key, f in counts.items():
        if f < 0:
            raise ValueError(f"negative frequency for {key!r}")
        out.extend([key] * f)
    rng = np.random.default_rng(seed)
    rng.shuffle(out)
    return out


def insertion_stream(n: int, total: int, z: float,
                     seed: int = 0) -> list[int]:
    """A random-order Zipfian stream of *total* items over *n* ranks."""
    dist = ZipfDistribution(n, z)
    return [int(x) for x in dist.sample(total, seed=seed)]


def deletion_phase_workload(n: int, total: int, z: float, *,
                            phases: int = 4, delete_fraction: float = 0.05,
                            seed: int = 0) -> list[tuple[str, int]]:
    """The Figure 8 workload: insert bursts with full-deletion phases.

    "The setup consisted of a series of insertions, followed by a series of
    deletions and so on.  In every deletion phase, 5% of the items were
    randomly chosen and were entirely deleted from the SBF."

    Returns a list of ``(op, key)`` pairs, op in {"insert", "delete"}.
    Deletions remove *every remaining occurrence* of the chosen item, one
    occurrence per op so that methods see the same op granularity.
    """
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(
            f"delete_fraction must be in [0, 1], got {delete_fraction}")
    if phases < 1:
        raise ValueError(f"phases must be >= 1, got {phases}")
    stream = insertion_stream(n, total, z, seed=seed)
    rng = np.random.default_rng(seed + 1)
    per_phase = max(1, len(stream) // phases)
    ops: list[tuple[str, int]] = []
    live: dict[int, int] = {}
    for p in range(phases):
        chunk = stream[p * per_phase:
                       (p + 1) * per_phase if p < phases - 1 else len(stream)]
        for x in chunk:
            ops.append(("insert", x))
            live[x] = live.get(x, 0) + 1
        victims = [x for x in live if live[x] > 0]
        rng.shuffle(victims)
        n_victims = int(len(victims) * delete_fraction)
        for x in victims[:n_victims]:
            for _ in range(live[x]):
                ops.append(("delete", x))
            live[x] = 0
    return ops


def sliding_window_stream(n: int, total: int, z: float, *,
                          window: int | None = None,
                          seed: int = 0) -> Iterator[tuple[str, int]]:
    """The Figure 9 workload: keep only the most recent *window* items.

    "A total of M items were inserted, but the SBFs only kept track of the
    M/5 most recent items, with data leaving the window explicitly deleted."

    Yields ``(op, key)`` pairs; every insert beyond the window is preceded
    by the deletion of the expiring item (out-of-scope data is assumed
    available, §2.2).
    """
    if window is None:
        window = max(1, total // 5)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    stream = insertion_stream(n, total, z, seed=seed)
    buffer: list[int] = []
    for x in stream:
        if len(buffer) == window:
            yield ("delete", buffer.pop(0))
        buffer.append(x)
        yield ("insert", x)


def apply_workload(sbf, ops) -> dict[object, int]:
    """Drive a filter with ``(op, key)`` pairs; return the true live counts.

    A plain helper shared by the tests and the Figure 8/9 benchmarks.
    """
    truth: dict[object, int] = {}
    for op, key in ops:
        if op == "insert":
            sbf.insert(key)
            truth[key] = truth.get(key, 0) + 1
        elif op == "delete":
            sbf.delete(key)
            truth[key] = truth.get(key, 0) - 1
        else:
            raise ValueError(f"unknown op {op!r}")
    return truth
