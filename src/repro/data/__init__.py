"""Workload and data-set generators for the experiment reproduction.

- :class:`ZipfDistribution` / :func:`zipf_multiset` — the synthetic Zipfian
  data of §2.3 and §6.1 (``p_i = c / i^z``);
- :mod:`repro.data.streams` — insertion streams, the deletion-phase
  workloads of Figure 8 and the sliding-window streams of Figure 9;
- :func:`forest_cover_elevations` — the Figure 7 "real data" substitute
  (see DESIGN.md §3 for the substitution rationale).
"""

from repro.data.zipf import ZipfDistribution, zipf_frequencies, zipf_multiset
from repro.data.streams import (
    deletion_phase_workload,
    insertion_stream,
    sliding_window_stream,
    stream_from_counts,
)
from repro.data.forest import forest_cover_elevations

__all__ = [
    "ZipfDistribution",
    "zipf_frequencies",
    "zipf_multiset",
    "insertion_stream",
    "stream_from_counts",
    "deletion_phase_workload",
    "sliding_window_stream",
    "forest_cover_elevations",
]
