"""Synthetic stand-in for the Forest Cover Type elevation data (Figure 7).

The paper's "real data" experiment indexes the *elevation* attribute of the
UCI KDD Forest Cover Type database: 581 012 records with 1 978 distinct
values whose frequency profile (Figure 7a) is multi-modal — a dominant bulge
with secondary shoulders and long light tails.

That database is unreachable in this offline environment, so — per the
substitution rule recorded in DESIGN.md — we generate a synthetic data set
with the *same count statistics* (records, distinct values) and a
Gaussian-mixture frequency profile matching the figure's shape.  The SBF
code path exercised by Figure 7 depends only on that frequency profile, not
on the provenance of the values.
"""

from __future__ import annotations

import numpy as np

# Mixture components tuned to echo Figure 7a / the real elevation histogram:
# (weight, mean metres, std metres).  Elevations span roughly 1850-3850 m.
_COMPONENTS = (
    (0.58, 3050.0, 180.0),   # the dominant Rawah/Comanche-like bulge
    (0.27, 2750.0, 220.0),   # mid-elevation shoulder
    (0.12, 2350.0, 160.0),   # low-elevation mode
    (0.03, 3500.0, 120.0),   # high tail
)
_MIN_ELEVATION = 1850
_DEFAULT_DISTINCT = 1978
_DEFAULT_RECORDS = 581_012


def forest_cover_elevations(n_records: int = _DEFAULT_RECORDS,
                            n_distinct: int = _DEFAULT_DISTINCT,
                            seed: int = 0) -> dict[int, int]:
    """Synthetic elevation multiset: ``{elevation_value: frequency}``.

    Args:
        n_records: total record count (581 012 in the paper; scale down for
            quick runs — the distribution shape is preserved).
        n_distinct: number of distinct elevation values to target (1 978 in
            the paper).  The generator guarantees *exactly* this many
            distinct values for the default sizes and very close otherwise.
        seed: sampling seed.

    Returns a mapping from integer elevation to its frequency, with
    ``sum(result.values()) == n_records``.
    """
    if n_records <= 0:
        raise ValueError(f"n_records must be positive, got {n_records}")
    if n_distinct <= 0:
        raise ValueError(f"n_distinct must be positive, got {n_distinct}")
    rng = np.random.default_rng(seed)
    weights = np.array([w for w, _mu, _sd in _COMPONENTS])
    weights = weights / weights.sum()
    component = rng.choice(len(_COMPONENTS), size=n_records, p=weights)
    means = np.array([mu for _w, mu, _sd in _COMPONENTS])
    stds = np.array([sd for _w, _mu, sd in _COMPONENTS])
    raw = rng.normal(means[component], stds[component])
    # Discretise onto exactly n_distinct integer elevation levels.
    span = raw.max() - raw.min()
    levels = np.clip(((raw - raw.min()) / span * (n_distinct - 1)).round(),
                     0, n_distinct - 1).astype(np.int64)
    values, counts = np.unique(levels, return_counts=True)
    # One integer metre per level keeps the distinct count exact; the span
    # (~1850-3828 m) matches the real elevation range closely.
    result = {int(_MIN_ELEVATION + v): int(f)
              for v, f in zip(values, counts)}
    # Backfill any empty levels so the distinct count is honoured: move one
    # record from the heaviest value onto each missing level.
    missing = n_distinct - len(result)
    if missing > 0:
        taken = set(values.tolist())
        gaps = [lvl for lvl in range(n_distinct) if lvl not in taken]
        for lvl in gaps[:missing]:
            heaviest = max(result, key=result.get)
            if result[heaviest] <= 1:
                break
            result[heaviest] -= 1
            result[int(_MIN_ELEVATION + lvl)] = 1
    return result
