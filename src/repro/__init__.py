"""repro — a full reproduction of "Spectral Bloom Filters" (SIGMOD 2003).

The Spectral Bloom Filter (SBF) of Saar Cohen and Yossi Matias extends the
Bloom filter from sets to *multisets*: it answers frequency queries
(``how many times did x occur?``) and threshold filters (``f_x >= T?``)
with one-sided error, in space close to the information-theoretic cost of
the counters, while supporting inserts, deletes, updates and streaming
construction.

Quick start::

    from repro import SpectralBloomFilter

    sbf = SpectralBloomFilter.for_items(n=10_000, error_rate=0.01,
                                        method="rm", seed=1)
    for word in stream:
        sbf.insert(word)
    sbf.query("needle")           # frequency estimate, >= true w.h.p.
    sbf.contains("needle", 100)   # ad-hoc iceberg threshold

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the SBF and its three maintenance methods;
- :mod:`repro.filters` — Bloom / counting-Bloom / Count-Min / hash-table
  baselines;
- :mod:`repro.succinct` — bit vector, rank/select, Elias & steps codes, the
  String-Array Index (§4);
- :mod:`repro.storage` — counter backends (array / compact / stream);
- :mod:`repro.hashing` — hash-function families;
- :mod:`repro.data` — Zipfian and synthetic workload generators;
- :mod:`repro.analysis` — the paper's closed-form error analyses;
- :mod:`repro.apps` — iceberg queries, Spectral Bloomjoins, aggregate
  indexes, bifocal sampling, range trees, sliding windows (§5);
- :mod:`repro.db` — the tiny relational/distributed substrate the apps
  run on;
- :mod:`repro.bench` — metrics and harness utilities for the experiment
  reproduction.
"""

from repro.core.sbf import SpectralBloomFilter
from repro.core.params import (
    bloom_error,
    gamma,
    optimal_k,
    optimal_m,
    recommended_parameters,
)
from repro.core.unbiased import (
    HybridEstimator,
    MedianOfMeansEstimator,
    UnbiasedEstimator,
)
from repro.filters.bloom import BloomFilter
from repro.filters.counting import CountingBloomFilter
from repro.filters.count_min import CountMinSketch
from repro.filters.hashtable import ChainedHashTable
from repro.succinct.string_array import StringArrayIndex

__version__ = "1.0.0"

__all__ = [
    "SpectralBloomFilter",
    "BloomFilter",
    "CountingBloomFilter",
    "CountMinSketch",
    "ChainedHashTable",
    "StringArrayIndex",
    "UnbiasedEstimator",
    "MedianOfMeansEstimator",
    "HybridEstimator",
    "bloom_error",
    "gamma",
    "optimal_k",
    "optimal_m",
    "recommended_parameters",
    "__version__",
]
