"""ARIES-lite recovery: newest good snapshot + intact WAL suffix.

:func:`recover` rebuilds a filter from a durability directory:

1. load the newest snapshot that passes its checksum, falling back a
   generation per failure (:meth:`SnapshotStore.load_latest`);
2. replay every intact WAL record with ``seq`` past the snapshot's,
   stopping at the first torn/corrupt record — a damaged record and
   everything after it are *never* applied;
3. truncate the damaged tail so the reopened log is clean;
4. audit the rebuilt filter with ``check_integrity()`` before handing
   it back.

The guarantee is prefix consistency: whatever byte the crash hit, the
recovered filter equals replaying some prefix of the acknowledged
operation sequence — at least every operation that was fsynced, at most
every operation that was attempted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.sbf import SpectralBloomFilter
from repro.persist.crashsim import FileIO
from repro.persist.snapshot import SnapshotStore
from repro.persist.wal import (
    OP_DELETE,
    OP_DELETE_MANY,
    OP_INSERT,
    OP_INSERT_MANY,
    OP_SET,
    WALRecord,
    replay,
)

#: default WAL filename inside a durability directory
WAL_NAME = "wal.log"


class RecoveryError(RuntimeError):
    """Recovery could not produce a trustworthy filter."""


@dataclass
class RecoveryReport:
    """What recovery found and did (for logs, tests, and monitoring)."""

    snapshot_generation: int | None = None
    snapshot_seq: int = 0
    snapshots_rejected: list[str] = field(default_factory=list)
    records_replayed: int = 0
    last_seq: int = 0
    torn_tail: str | None = None
    truncated_at: int | None = None
    integrity_issues: list[str] = field(default_factory=list)

    @property
    def used_snapshot(self) -> bool:
        return self.snapshot_generation is not None


def apply_record(sbf: SpectralBloomFilter, record: WALRecord) -> None:
    """Apply one WAL record to a filter.

    ``set`` records are key-level (``f_key := count``) and replay as the
    insert/delete delta against the filter's current estimate — the same
    reduction the serving handle performs when logging them, so replay
    retraces the exact live mutations.
    """
    if record.op == OP_INSERT:
        sbf.insert(record.key, record.count)
    elif record.op == OP_DELETE:
        sbf.delete(record.key, record.count)
    elif record.op == OP_INSERT_MANY:
        # Replays through the same bulk kernels that served the batch, so
        # the recovered counters are bit-identical to the served ones.
        sbf.insert_many(record.key, record.count)
    elif record.op == OP_DELETE_MANY:
        sbf.delete_many(record.key, record.count)
    elif record.op == OP_SET:
        current = sbf.query(record.key)
        if record.count > current:
            sbf.insert(record.key, record.count - current)
        elif record.count < current:
            sbf.delete(record.key, current - record.count)
    else:  # unreachable: replay() rejects unknown op codes
        raise RecoveryError(f"unknown WAL op {record.op}")


def recover(directory: str, *,
            factory: Callable[[], SpectralBloomFilter] | None = None,
            io: FileIO | None = None, wal_name: str = WAL_NAME,
            strict: bool = True,
            ) -> tuple[SpectralBloomFilter, RecoveryReport]:
    """Rebuild the filter persisted under *directory*.

    Args:
        directory: the durability directory (snapshots + WAL).
        factory: builds the empty filter when no snapshot exists yet (a
            crash before the first checkpoint); must produce the same
            configuration the WAL was written against.  Without it, a
            snapshot is required.
        io: filesystem layer (a :class:`~repro.persist.crashsim.CrashIO`
            under test).
        wal_name: WAL filename inside *directory*.
        strict: raise :class:`RecoveryError` if the rebuilt filter fails
            ``check_integrity()`` (set False to get the filter plus the
            issues in the report — e.g. for Minimal Increase filters whose
            clamped deletions legitimately bend the sum invariant).

    Returns:
        ``(filter, report)``.

    Raises:
        RecoveryError: no snapshot and no *factory*, or (with *strict*)
            the recovered filter fails its integrity audit.
    """
    io = io or FileIO()
    store = SnapshotStore(directory, io=io)
    report = RecoveryReport()
    loaded = store.load_latest()
    if loaded is not None:
        sbf, snap_seq, generation, rejected = loaded
        report.snapshot_generation = generation
        report.snapshot_seq = snap_seq
        report.snapshots_rejected = rejected
    elif factory is not None:
        sbf = factory()
        snap_seq = 0
    else:
        raise RecoveryError(
            f"no usable snapshot under {directory!r} and no factory to "
            f"build an empty filter")

    wal_path = f"{directory}/{wal_name}"
    records, scan = replay(wal_path, io=io, after_seq=snap_seq)
    for record in records:
        try:
            apply_record(sbf, record)
        except ValueError as exc:
            raise RecoveryError(
                f"WAL record seq={record.seq} ({record.op_name} "
                f"{record.key!r} x{record.count}) cannot be applied — the "
                f"log and snapshot diverge: {exc}") from exc
    report.records_replayed = len(records)
    report.last_seq = max(scan.last_seq, snap_seq)
    if scan.reason is not None:
        report.torn_tail = scan.reason
        report.truncated_at = scan.good_end
        io.truncate(wal_path, scan.good_end)

    report.integrity_issues = sbf.check_integrity()
    if strict and report.integrity_issues:
        raise RecoveryError(
            "recovered filter failed its integrity audit: "
            + "; ".join(report.integrity_issues))
    return sbf, report
