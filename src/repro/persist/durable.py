"""The durable serving handle: WAL-ahead mutations + atomic checkpoints.

:class:`DurableSBF` wraps a :class:`SpectralBloomFilter` so that every
acknowledged mutation survives a process crash:

- mutations are logged to the WAL *before* they touch the in-memory
  filter (write-ahead: a logged-but-unapplied operation is redone by
  replay; the reverse order could acknowledge an operation that no
  recovery can reconstruct);
- :meth:`checkpoint` forces the log down, writes an atomic snapshot
  carrying the last logged sequence number, then resets the log —
  recovery loads the snapshot and replays only newer records, so a crash
  anywhere inside the checkpoint dance falls back to the previous
  snapshot plus the still-intact log;
- :meth:`open` is the crash-recovery entry point: point it at a
  directory and it either recovers the persisted state or starts fresh
  from *factory*.

Keys must be JSON scalars (the WAL's key discipline); reads are plain
pass-throughs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core import kernels
from repro.core.sbf import SpectralBloomFilter
from repro.hashing.vectorized import canonicalize_many, matrix_for
from repro.persist.crashsim import FileIO
from repro.persist.recovery import WAL_NAME, RecoveryReport, recover
from repro.persist.snapshot import SnapshotStore
from repro.persist.wal import WriteAheadLog


class DurableSBF:
    """A SpectralBloomFilter whose acknowledged mutations survive crashes.

    Build fresh ones around an empty filter, or use :meth:`open` to
    recover whatever a previous process persisted.

    Args:
        sbf: the in-memory filter to serve from (must reflect exactly the
            state persisted under *directory* — :meth:`open` guarantees
            this).
        directory: durability directory (WAL + snapshots).
        fsync: WAL fsync policy — ``"always"`` / int N / ``"checkpoint"``.
        io: filesystem layer (a :class:`~repro.persist.crashsim.CrashIO`
            under test).
        retain: snapshot generations to keep.
        next_seq: continue WAL numbering from here (recovery wiring).
    """

    def __init__(self, sbf: SpectralBloomFilter, directory: str, *,
                 fsync: object = "always", io: FileIO | None = None,
                 retain: int = 2, next_seq: int | None = None):
        self.sbf = sbf
        self.directory = str(directory)
        self.io = io or FileIO()
        self.io.makedirs(self.directory)
        self.snapshots = SnapshotStore(self.directory, io=self.io,
                                       retain=retain)
        self.wal = WriteAheadLog(f"{self.directory}/{WAL_NAME}",
                                 fsync=fsync, io=self.io, next_seq=next_seq)
        self.last_recovery: RecoveryReport | None = None
        self.checkpoints = 0

    @classmethod
    def open(cls, directory: str, *,
             factory: Callable[[], SpectralBloomFilter] | None = None,
             fsync: object = "always", io: FileIO | None = None,
             retain: int = 2, strict: bool = True) -> "DurableSBF":
        """Recover (or initialise) the filter persisted under *directory*.

        With no persisted state, *factory* builds the initial filter; with
        persisted state, recovery rebuilds it (and *factory* must describe
        the same configuration, since WAL replay depends on it).
        """
        io = io or FileIO()
        store = SnapshotStore(directory, io=io, retain=retain)
        has_state = bool(store.generations()) or io.exists(
            f"{directory}/{WAL_NAME}")
        if has_state:
            sbf, report = recover(directory, factory=factory, io=io,
                                  strict=strict)
            handle = cls(sbf, directory, fsync=fsync, io=io, retain=retain,
                         next_seq=report.last_seq + 1)
            handle.last_recovery = report
            return handle
        if factory is None:
            raise ValueError(
                f"{directory!r} holds no persisted filter and no factory "
                f"was given to create one")
        return cls(factory(), directory, fsync=fsync, io=io, retain=retain)

    # -- mutations (write-ahead) ----------------------------------------
    def insert(self, key: object, count: int = 1) -> int:
        """Durably record *count* occurrences of *key*; returns the WAL seq."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return self.wal.last_seq
        seq = self.wal.log_insert(key, count)
        self.sbf.insert(key, count)
        return seq

    def delete(self, key: object, count: int = 1) -> int:
        """Durably remove *count* occurrences of *key*; returns the WAL seq.

        Raises:
            ValueError: if the deletion would drive a counter negative —
                checked *before* logging, so an invalid delete never
                poisons the log with a record replay cannot apply.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return self.wal.last_seq
        if self.sbf.method.name != "mi" and self.sbf.min_counter(key) < count:
            raise ValueError(
                f"deleting {count} of {key!r} would drive a counter "
                f"negative (estimate {self.sbf.min_counter(key)})")
        seq = self.wal.log_delete(key, count)
        self.sbf.delete(key, count)
        return seq

    # -- bulk mutations (one WAL record per batch) -----------------------
    @staticmethod
    def _as_lists(keys, counts) -> tuple[list, list]:
        """Normalise a batch to plain lists the WAL can round-trip."""
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        else:
            keys = list(keys)
        if counts is None:
            counts = [1] * len(keys)
        elif isinstance(counts, (int, np.integer)):
            counts = [int(counts)] * len(keys)
        elif isinstance(counts, np.ndarray):
            counts = counts.tolist()
        else:
            counts = list(counts)
        return keys, counts

    def insert_many(self, keys: Sequence, counts=None) -> int:
        """Durably record a whole batch; returns the batch's WAL seq.

        The batch is logged as a single ``insert_many`` record — one
        append, one CRC, one fsync — *before* the in-memory filter moves
        (write-ahead), then applied through the vectorised bulk kernels.
        Key and count validation happens in the log layer, so an invalid
        batch raises before either the log or the filter changes.
        """
        keys, counts = self._as_lists(keys, counts)
        if not keys:
            return self.wal.last_seq
        seq = self.wal.log_insert_many(keys, counts)
        self.sbf.insert_many(keys, counts)
        return seq

    def delete_many(self, keys: Sequence, counts=None) -> int:
        """Durably remove a whole batch; returns the batch's WAL seq.

        Raises:
            ValueError: if the batch would drive any counter negative —
                checked with a *read-only* aggregate pass before logging,
                so a rejected batch never poisons the log with a record
                replay cannot apply.
        """
        keys, counts = self._as_lists(keys, counts)
        if not keys:
            return self.wal.last_seq
        if self.sbf.method.name not in ("ms", "mi", "rm"):
            # Methods that replay batches as a scalar sequence (e.g. the
            # trapping refinement) validate per key mid-stream; log them
            # the same way so every logged record is applicable.
            last = self.wal.last_seq
            for key, count in zip(keys, counts):
                last = self.delete(key, count)
            return last
        self._precheck_bulk_delete(keys, counts)
        seq = self.wal.log_delete_many(keys, counts)
        self.sbf.delete_many(keys, counts)
        return seq

    def _precheck_bulk_delete(self, keys: list, counts: list) -> None:
        """Read-only underflow check mirroring the bulk delete kernels.

        MS/RM bulk deletes apply one aggregated decrement per distinct
        primary counter and fail iff some final value would be negative;
        checking exactly that aggregate here means a logged bulk delete
        record always applies (MI clamps and never fails).
        """
        if self.sbf.method.name == "mi":
            return
        arr = np.asarray(counts, dtype=np.int64)
        if bool((arr < 0).any()):
            bad = int(arr[arr < 0][0])
            raise ValueError(f"count must be >= 0, got {bad}")
        canon = canonicalize_many(keys)
        matrix = matrix_for(self.sbf.family, canon)
        deltas = np.repeat(arr, self.sbf.k)
        uniq, sums = kernels.aggregate_deltas(matrix.ravel(), deltas)
        current = self.sbf.counters.get_many(uniq)
        short = current < sums
        if bool(short.any()):
            pos = int(uniq[short][0])
            raise ValueError(
                f"bulk delete would drive counter {pos} negative "
                f"({int(current[short][0])} - {int(sums[short][0])})")

    def query_many(self, keys: Sequence) -> np.ndarray:
        """Vectorised frequency estimates for a batch of keys."""
        return self.sbf.query_many(keys)

    def set(self, key: object, count: int) -> int:
        """Durably force ``f_key := count``; returns the WAL seq.

        Logged as a ``set`` record and applied as the insert/delete delta
        against the current estimate — replay performs the identical
        reduction, so recovered state matches served state.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        seq = self.wal.log_set(key, count)
        current = self.sbf.query(key)
        if count > current:
            self.sbf.insert(key, count - current)
        elif count < current:
            self.sbf.delete(key, current - count)
        return seq

    # -- reads -----------------------------------------------------------
    def query(self, key: object) -> int:
        return self.sbf.query(key)

    def contains(self, key: object, threshold: int = 1) -> bool:
        return self.sbf.contains(key, threshold)

    # -- durability points -------------------------------------------------
    def checkpoint(self) -> str:
        """Write an atomic snapshot and reset the log; returns its path.

        Also the fsync point of the ``"checkpoint"`` WAL policy.  Crash
        ordering: the log is synced *before* the snapshot (so the snapshot
        never reflects an operation the log could lose), and reset *after*
        the rename (a crash in between leaves old records the snapshot
        already covers — replay skips them by sequence number).
        """
        self.wal.sync()
        path = self.snapshots.save(self.sbf, self.wal.last_seq)
        self.wal.reset()
        self.checkpoints += 1
        return path

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableSBF":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DurableSBF({self.sbf!r}, dir={self.directory!r}, "
                f"last_seq={self.wal.last_seq})")
