"""Atomic, generation-numbered filter checkpoints.

A snapshot is the serialize-v2 SBF frame wrapped in an outer
:func:`~repro.core.serialize.seal_frame` carrying the WAL sequence number
it reflects.  Writing follows the classic crash-safe dance::

    write snap-<gen>.tmp  →  fsync(file)  →  rename to snap-<gen>-<seq>.sbf
                                           →  fsync(directory)

``os.replace`` is atomic on POSIX, so at every instant the directory holds
only complete snapshot files plus (possibly) one ignorable ``.tmp``; a
crash anywhere in the dance leaves either the old state or the new state,
never a half state.  Generations increase monotonically, and the store
retains the previous good generation when writing a new one, so recovery
can fall back a generation if the newest file fails its checksum (e.g.
silent media corruption after the write).
"""

from __future__ import annotations

import os.path
import re
import struct

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import (
    WireFormatError,
    dump_sbf,
    load_sbf,
    open_frame,
    seal_frame,
)
from repro.persist.crashsim import FileIO

_MAGIC = b"RSN1"
_NAME = re.compile(r"^snap-(\d{8})-(\d+)\.sbf$")


class SnapshotError(ValueError):
    """A snapshot file is missing, corrupt, or inconsistent."""


def atomic_write_bytes(path: str, data: bytes, *,
                       io: FileIO | None = None) -> None:
    """Write *data* to *path* via write-temp → fsync → atomic rename.

    The building block shared by the snapshot store and the app-layer
    checkpoints (sliding window, summary cache): readers never observe a
    half-written *path*.  The directory is fsynced after the rename so
    the new entry itself survives power loss — without it a checkpoint
    could silently roll back to the previous version.
    """
    io = io or FileIO()
    tmp = path + ".tmp"
    with io.open(tmp, "wb") as handle:
        handle.write(data)
        io.fsync(handle)
    io.replace(tmp, path)
    io.fsync_dir(os.path.dirname(path) or ".")


def read_frame_file(path: str, magic: bytes, *,
                    io: FileIO | None = None) -> tuple[dict, bytes]:
    """Load and validate a sealed frame written by :func:`atomic_write_bytes`.

    Raises:
        WireFormatError: if the file is torn or corrupt.
    """
    io = io or FileIO()
    with io.open(path, "rb") as handle:
        return open_frame(handle.read(), magic)


class SnapshotStore:
    """Directory of generation-numbered snapshots of one filter.

    Args:
        directory: where snapshot files live (created if missing).
        io: filesystem layer (a :class:`~repro.persist.crashsim.CrashIO`
            under test).
        retain: how many good generations to keep (>= 1; default 2 — the
            current one plus the fallback).
    """

    def __init__(self, directory: str, *, io: FileIO | None = None,
                 retain: int = 2):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.directory = str(directory)
        self.io = io or FileIO()
        self.retain = int(retain)
        self.io.makedirs(self.directory)

    # -- naming ------------------------------------------------------------
    def _path(self, name: str) -> str:
        return f"{self.directory}/{name}"

    def generations(self) -> list[tuple[int, int, str]]:
        """All complete snapshot files as sorted ``(gen, seq, name)``."""
        found = []
        for name in self.io.listdir(self.directory):
            match = _NAME.match(name)
            if match:
                found.append((int(match.group(1)), int(match.group(2)),
                              name))
        found.sort()
        return found

    # -- writing -------------------------------------------------------
    def save(self, sbf: SpectralBloomFilter, seq: int) -> str:
        """Checkpoint *sbf* as the next generation, reflecting WAL *seq*.

        Returns the final snapshot path.  The temp file is fsynced before
        the atomic rename and the directory is fsynced after it, so once
        ``save`` returns the snapshot survives power loss; if the process
        dies mid-save the previous generation is untouched.
        """
        if seq < 0:
            raise ValueError(f"seq must be >= 0, got {seq}")
        existing = self.generations()
        generation = (existing[-1][0] + 1) if existing else 1
        frame = seal_frame(_MAGIC, {"generation": generation, "seq": seq},
                           struct.pack("<Q", seq) + dump_sbf(sbf))
        name = f"snap-{generation:08d}-{seq}.sbf"
        tmp = self._path(f"snap-{generation:08d}.tmp")
        with self.io.open(tmp, "wb") as handle:
            handle.write(frame)
            self.io.fsync(handle)
        self.io.replace(tmp, self._path(name))
        self.io.fsync_dir(self.directory)
        self._prune()
        return self._path(name)

    def _frame_ok(self, name: str, gen: int, seq: int) -> bool:
        """Cheap validity probe for pruning: the frame checksum and header
        must pass the same checks :meth:`load_latest` applies, minus
        actually rebuilding the filter."""
        try:
            with self.io.open(self._path(name), "rb") as handle:
                data = handle.read()
            meta, payload = open_frame(data, _MAGIC)
        except (OSError, WireFormatError):
            return False
        return (meta.get("generation") == gen and meta.get("seq") == seq
                and len(payload) >= 8
                and struct.unpack_from("<Q", payload)[0] == seq)

    def _prune(self) -> None:
        """Drop generations older than the newest ``retain`` *valid* ones.

        Corrupt files never count toward the retained window: with
        generations [good, corrupt], saving a new snapshot must keep the
        older good generation — it is the fallback that
        :meth:`load_latest`'s generation walk depends on.  If fewer than
        ``retain`` valid generations exist, nothing is deleted.
        """
        survivors = self.generations()
        kept = 0
        for idx in range(len(survivors) - 1, -1, -1):
            gen, seq, name = survivors[idx]
            if self._frame_ok(name, gen, seq):
                kept += 1
                if kept == self.retain:
                    for _gen, _seq, old_name in survivors[:idx]:
                        self.io.remove(self._path(old_name))
                    return

    # -- reading -------------------------------------------------------
    def _decode(self, name: str, gen: int, seq: int) -> SpectralBloomFilter:
        with self.io.open(self._path(name), "rb") as handle:
            data = handle.read()
        meta, payload = open_frame(data, _MAGIC)
        if meta.get("generation") != gen or meta.get("seq") != seq:
            raise SnapshotError(
                f"snapshot {name} header says generation "
                f"{meta.get('generation')} / seq {meta.get('seq')} — the "
                f"file was renamed or tampered with")
        if len(payload) < 8:
            raise SnapshotError(f"snapshot {name} payload is truncated")
        (embedded_seq,) = struct.unpack_from("<Q", payload)
        if embedded_seq != seq:
            raise SnapshotError(
                f"snapshot {name} embeds seq {embedded_seq}, expected {seq}")
        return load_sbf(payload[8:])

    def load_latest(self) -> tuple[SpectralBloomFilter, int, int,
                                   list[str]] | None:
        """Newest decodable snapshot, falling back a generation on damage.

        Returns ``(filter, seq, generation, rejected)`` where *rejected*
        lists the names of newer snapshots that failed validation, or
        ``None`` when no usable snapshot exists.
        """
        rejected: list[str] = []
        for gen, seq, name in reversed(self.generations()):
            try:
                sbf = self._decode(name, gen, seq)
            except (WireFormatError, SnapshotError):
                rejected.append(name)
                continue
            return sbf, seq, gen, rejected
        return None
