"""Deterministic filesystem fault injection (the disk sibling of
:mod:`repro.db.faults`).

The durability layer never touches :mod:`os` directly: every file open,
fsync, and rename goes through a :class:`FileIO` object.  The default
instance performs the real system calls; :class:`CrashIO` is a drop-in
replacement that kills the "process" at an arbitrary point in the write
schedule — after a chosen number of bytes have reached the file, or at a
chosen fsync or rename call — by writing only the prefix that would have
hit the disk and then raising :class:`SimulatedCrash`.

Because the budget is a *byte offset into the total write stream*, a test
can first run a workload against a plain :class:`FileIO` to learn how many
bytes it writes, then re-run it once per offset and prove that
:func:`repro.persist.recovery.recover` restores a prefix-consistent filter
from **every** possible torn write — the filesystem analogue of the chaos
suite's exhaustive fault schedules.

Crash semantics modelled:

- *torn write*: ``crash_after_bytes=B`` lets exactly ``B`` further bytes
  reach files (across all of them, in write order), then crashes.  A
  record straddling the boundary is left half-written, exactly like a
  power cut mid-``write(2)``.
- *lost rename*: ``crash_before_replace=n`` crashes on the *n*-th
  ``replace`` call before it happens (the new file never appears);
  ``crash_after_replace=n`` crashes just after (the rename is durable but
  whatever bookkeeping follows never runs).  ``os.replace`` itself is
  atomic, so these two cases are the only observable outcomes.
- *lost fsync*: ``crash_on_fsync=n`` crashes on the *n*-th fsync call,
  before it takes effect.

All counters (``bytes_written``, ``fsync_calls``, ``replace_calls``) are
maintained by the base class too, so a clean run doubles as the schedule
probe for the exhaustive matrix.
"""

from __future__ import annotations

import os


class SimulatedCrash(RuntimeError):
    """The injected process death.

    Test harnesses catch this where a real deployment would lose the
    process; everything the workload did afterwards is, by construction,
    unacknowledged.
    """


class FileIO:
    """Real filesystem operations, instrumented with write-schedule counters.

    Attributes:
        bytes_written: total bytes handed to ``write`` across all files.
        fsync_calls: number of :meth:`fsync` invocations.
        replace_calls: number of :meth:`replace` invocations.
    """

    def __init__(self):
        self.bytes_written = 0
        self.fsync_calls = 0
        self.replace_calls = 0

    # -- hooks subclasses override --------------------------------------
    def _admit(self, nbytes: int) -> int:
        """How many of the next *nbytes* may reach the file (all, here)."""
        return nbytes

    def _before_fsync(self) -> None:
        pass

    def _around_replace(self) -> None:
        pass

    def _after_replace(self) -> None:
        pass

    # -- operations ------------------------------------------------------
    def open(self, path: str, mode: str = "rb") -> "_TrackedFile":
        """Open *path*; writes through the handle obey the crash budget."""
        return _TrackedFile(open(path, mode), self)

    def fsync(self, fileobj) -> None:
        """Flush and fsync an open :meth:`open` handle."""
        self.fsync_calls += 1
        self._before_fsync()
        fileobj.flush()
        os.fsync(fileobj.fileno())

    def replace(self, src: str, dst: str) -> None:
        """Atomically rename *src* over *dst* (``os.replace``)."""
        self.replace_calls += 1
        self._around_replace()
        os.replace(src, dst)
        self._after_replace()

    def fsync_dir(self, path: str) -> None:
        """fsync a directory so a rename inside it is itself durable."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> list[str]:
        return os.listdir(path)

    def remove(self, path: str) -> None:
        os.remove(path)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def file_size(self, path: str) -> int:
        return os.path.getsize(path)

    def truncate(self, path: str, size: int) -> None:
        """Cut *path* down to *size* bytes (recovery's torn-tail removal)."""
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())


class _TrackedFile:
    """A file handle whose writes are metered (and possibly cut short)."""

    def __init__(self, raw, io: FileIO):
        self._raw = raw
        self._io = io

    def write(self, data: bytes) -> int:
        admitted = self._io._admit(len(data))
        if admitted >= len(data):
            self._io.bytes_written += len(data)
            return self._raw.write(data)
        # Torn write: the prefix reaches the file, then the process dies.
        if admitted:
            self._io.bytes_written += admitted
            self._raw.write(data[:admitted])
        self._raw.flush()
        self._raw.close()
        raise SimulatedCrash(
            f"crashed after {self._io.bytes_written} total bytes "
            f"({admitted}/{len(data)} of the final write)")

    def read(self, *args):
        return self._raw.read(*args)

    def seek(self, *args):
        return self._raw.seek(*args)

    def tell(self):
        return self._raw.tell()

    def flush(self):
        self._raw.flush()

    def fileno(self):
        return self._raw.fileno()

    def truncate(self, *args):
        return self._raw.truncate(*args)

    @property
    def closed(self):
        return self._raw.closed

    def close(self):
        self._raw.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class CrashIO(FileIO):
    """A :class:`FileIO` that dies at a configured point in the schedule.

    Args:
        crash_after_bytes: let exactly this many further bytes reach files
            (in write order, across all files), then raise
            :class:`SimulatedCrash` — leaving the current write torn.
        crash_on_fsync: raise on the n-th (1-based) fsync call, before it
            takes effect.
        crash_before_replace: raise on the n-th replace call before the
            rename happens.
        crash_after_replace: raise on the n-th replace call just after the
            rename happened.

    Exactly reproducible: the same configuration against the same workload
    crashes at the same instruction.
    """

    def __init__(self, *, crash_after_bytes: int | None = None,
                 crash_on_fsync: int | None = None,
                 crash_before_replace: int | None = None,
                 crash_after_replace: int | None = None):
        super().__init__()
        for name, value in (("crash_after_bytes", crash_after_bytes),
                            ("crash_on_fsync", crash_on_fsync),
                            ("crash_before_replace", crash_before_replace),
                            ("crash_after_replace", crash_after_replace)):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        self.crash_after_bytes = crash_after_bytes
        self.crash_on_fsync = crash_on_fsync
        self.crash_before_replace = crash_before_replace
        self.crash_after_replace = crash_after_replace

    def _admit(self, nbytes: int) -> int:
        if self.crash_after_bytes is None:
            return nbytes
        remaining = self.crash_after_bytes - self.bytes_written
        return nbytes if remaining >= nbytes else max(0, remaining)

    def _before_fsync(self) -> None:
        if self.crash_on_fsync is not None \
                and self.fsync_calls >= self.crash_on_fsync:
            raise SimulatedCrash(
                f"crashed on fsync call #{self.fsync_calls}")

    def _around_replace(self) -> None:
        if self.crash_before_replace is not None \
                and self.replace_calls >= self.crash_before_replace:
            raise SimulatedCrash(
                f"crashed before replace call #{self.replace_calls}")

    def _after_replace(self) -> None:
        if self.crash_after_replace is not None \
                and self.replace_calls >= self.crash_after_replace:
            raise SimulatedCrash(
                f"crashed after replace call #{self.replace_calls}")


def torn_write(path: str, data: bytes, crash_at: int) -> None:
    """Write only ``data[:crash_at]`` to *path* — a hand-rolled torn write.

    Convenience for tests that corrupt an existing file directly instead
    of driving a workload through :class:`CrashIO`.
    """
    if not 0 <= crash_at <= len(data):
        raise ValueError(
            f"crash_at must be within [0, {len(data)}], got {crash_at}")
    with open(path, "wb") as handle:
        handle.write(data[:crash_at])


def flip_bit(path: str, bit: int) -> None:
    """Flip one bit of an existing file in place (silent media corruption)."""
    with open(path, "r+b") as handle:
        handle.seek(bit // 8)
        byte = handle.read(1)
        if not byte:
            raise ValueError(f"bit {bit} is past the end of {path}")
        handle.seek(bit // 8)
        handle.write(bytes([byte[0] ^ (1 << (bit % 8))]))
