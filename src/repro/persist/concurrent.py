"""A concurrency-safe serving handle over (durable) spectral filters.

Python's counter backends are not thread-safe: ``add`` is a read-modify-
write, the String-Array Index shifts neighbouring fields on expansion, and
``total_count`` is a shared accumulator.  :class:`ConcurrentSBF` makes a
filter servable from many threads:

- **striped counter locks** — counter index space is partitioned into
  ``stripes`` lock stripes; an insert/delete/query takes only the stripes
  its ``k`` counters map to, so operations on disjoint stripes run in
  parallel.  Stripes are always acquired in ascending order, which makes
  deadlock impossible by construction (no cycle in the waits-for graph).
- **a single writer lock** — checkpoints (and other whole-filter moments
  such as ``set`` and serialisation) additionally take an exclusive lock
  plus *every* stripe, freezing a consistent cut of the counter vector.
- **bounded-wait acquisition** — every lock acquire carries a deadline;
  exceeding it raises :class:`LockTimeout` (a typed ``TimeoutError``)
  instead of blocking forever, so a stuck peer degrades into a visible,
  retryable error rather than a deadlocked process.
- **a shared read path for bulk queries** — ``query_many`` mutates
  nothing, so batches of it may overlap freely; making each one take the
  writer lock plus every stripe (the old behaviour) serialised the
  hottest read path of the serving layer.  A group-exclusion gate now
  separates *readers* (``query_many``) from *mutators* (every writing
  path): any number of readers run concurrently, any number of mutators
  run concurrently under the stripe discipline that already protects
  them from each other, and the two groups never overlap.  Waiting
  mutators bar new readers (writer preference), so a read storm cannot
  starve writes.

Striping is only sound for Minimum Selection over the plain array
backend, where a counter update touches that counter's word and nothing
else.  Everything else degrades to a single stripe, i.e. one big lock —
correct first, parallel where proven:

- methods with cross-counter logic (MI reads all minima before writing;
  RM maintains a secondary filter) couple counters across stripes; and
- compact backends mutate shared structure on *any* write: a
  String-Array Index expansion shifts neighbouring fields (and can
  rebuild the whole index), and a coded-stream update re-encodes a chunk
  holding other counters — so two threads holding disjoint stripes could
  still corrupt counters neither of them locked.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.core.sbf import SpectralBloomFilter
from repro.persist.durable import DurableSBF
from repro.storage.backends import ArrayBackend


class LockTimeout(TimeoutError):
    """A bounded lock wait expired (the filter stayed consistent)."""


class _GroupGate:
    """Group mutual exclusion between *readers* and *mutators*.

    Members of the same group overlap freely; members of different
    groups never do.  This is weaker than a read-write lock — mutators
    do not exclude each other (the stripe locks already arbitrate them)
    — which is exactly why a reader entering here can skip the stripe
    locks entirely.  Waiting mutators bar new readers (writer
    preference).  Both entries are bounded: they return ``False`` on
    deadline instead of blocking forever.
    """

    __slots__ = ("_cond", "_readers", "_mutators", "_mutators_waiting",
                 "_clock")

    def __init__(self, clock=None) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._mutators = 0
        self._mutators_waiting = 0
        self._clock = clock or time.monotonic

    def enter_read(self, budget: float) -> bool:
        deadline = self._clock() + budget
        with self._cond:
            while self._mutators or self._mutators_waiting:
                remaining = deadline - self._clock()
                if remaining <= 0 or not self._cond.wait(remaining):
                    return False
            self._readers += 1
            return True

    def exit_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def enter_mutate(self, budget: float) -> bool:
        deadline = self._clock() + budget
        with self._cond:
            self._mutators_waiting += 1
            try:
                while self._readers:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return False
            finally:
                # Runs under the condition lock either way; a timed-out
                # mutator must wake readers it was barring.
                self._mutators_waiting -= 1
                if self._mutators_waiting == 0:
                    self._cond.notify_all()
            self._mutators += 1
            return True

    def exit_mutate(self) -> None:
        with self._cond:
            self._mutators -= 1
            if self._mutators == 0:
                self._cond.notify_all()


class ConcurrentSBF:
    """Thread-safe facade over a :class:`SpectralBloomFilter` or
    :class:`DurableSBF`.

    Args:
        filter: the filter to serve — a plain ``SpectralBloomFilter`` or a
            ``DurableSBF`` (mutations then go through its write-ahead
            log, whose own lock linearises record order).
        stripes: number of lock stripes (>= 1).  Forced to 1 unless the
            filter is Minimum Selection over the array backend (see
            module docstring — other method/backend combinations couple
            counters across stripe boundaries).
        timeout: default bound, in seconds, on any lock wait.
        clock: seconds-returning callable the lock-wait budgets are
            measured on (the injected-clock convention of
            :mod:`repro.serve.metrics`); defaults to ``time.monotonic``.
            A simulated clock makes lock-budget arithmetic deterministic
            — on an uncontended handle no wall-clock time is read at all.
    """

    def __init__(self, filter: SpectralBloomFilter | DurableSBF, *,
                 stripes: int = 16, timeout: float = 5.0, clock=None):
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._handle = filter
        self._sbf: SpectralBloomFilter = (
            filter.sbf if isinstance(filter, DurableSBF) else filter)
        if self._sbf.method.name != "ms" \
                or not isinstance(self._sbf.counters, ArrayBackend):
            stripes = 1
        self.stripes = stripes
        self.timeout = float(timeout)
        self.clock = clock or time.monotonic
        self._locks = [threading.Lock() for _ in range(stripes)]
        self._writer = threading.Lock()
        self._count_lock = threading.Lock()
        self._gate = _GroupGate(self.clock)
        self.lock_timeouts = 0
        self.operations = 0

    # -- lock plumbing -----------------------------------------------------
    def _stripes_for(self, key: object) -> list[int]:
        return sorted({i % self.stripes for i in self._sbf.indices(key)})

    def _acquire(self, locks: Sequence[threading.Lock],
                 timeout: float | None) -> list[threading.Lock]:
        """Take *locks* in order under one deadline; all-or-nothing."""
        budget = self.timeout if timeout is None else timeout
        deadline = self.clock() + budget
        taken: list[threading.Lock] = []
        for lock in locks:
            remaining = deadline - self.clock()
            if remaining <= 0 or not lock.acquire(timeout=remaining):
                for held in reversed(taken):
                    held.release()
                with self._count_lock:
                    self.lock_timeouts += 1
                raise LockTimeout(
                    f"could not acquire {len(locks)} lock(s) within "
                    f"{budget:.3f}s (got {len(taken)})")
            taken.append(lock)
        return taken

    @staticmethod
    def _release(taken: list[threading.Lock]) -> None:
        for lock in reversed(taken):
            lock.release()

    def _key_locks(self, key: object) -> list[threading.Lock]:
        return [self._locks[s] for s in self._stripes_for(key)]

    def _all_locks(self) -> list[threading.Lock]:
        return [self._writer, *self._locks]

    def _enter_gate(self, *, read: bool, timeout: float | None) -> None:
        """Join the readers' or mutators' side of the group gate (bounded).

        A mutator entering here holds no stripe locks yet and a reader
        never takes any, so the gate adds no edge to the waits-for graph
        — deadlock stays impossible by construction.
        """
        budget = self.timeout if timeout is None else timeout
        entered = (self._gate.enter_read(budget) if read
                   else self._gate.enter_mutate(budget))
        if not entered:
            with self._count_lock:
                self.lock_timeouts += 1
            side = "reader" if read else "mutator"
            raise LockTimeout(
                f"could not join the {side} side of the read/write gate "
                f"within {budget:.3f}s")

    # -- mutations -----------------------------------------------------
    def insert(self, key: object, count: int = 1, *,
               timeout: float | None = None) -> None:
        """Record *count* occurrences of *key* under the key's stripes."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self._enter_gate(read=False, timeout=timeout)
        try:
            taken = self._acquire(self._key_locks(key), timeout)
            try:
                if isinstance(self._handle, DurableSBF):
                    self._handle.wal.log_insert(key, count)
                self._sbf.method.insert(key, count)
                # Inside the stripe section so a checkpoint (which holds
                # every stripe) always sees counters and total_count move
                # together.
                with self._count_lock:
                    self._sbf.total_count += count
                    self.operations += 1
            finally:
                self._release(taken)
        finally:
            self._gate.exit_mutate()

    def delete(self, key: object, count: int = 1, *,
               timeout: float | None = None) -> None:
        """Remove *count* occurrences of *key* under the key's stripes."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self._enter_gate(read=False, timeout=timeout)
        try:
            taken = self._acquire(self._key_locks(key), timeout)
            try:
                if isinstance(self._handle, DurableSBF):
                    if self._sbf.method.name != "mi" \
                            and self._sbf.min_counter(key) < count:
                        raise ValueError(
                            f"deleting {count} of {key!r} would drive a "
                            f"counter negative")
                    self._handle.wal.log_delete(key, count)
                self._sbf.method.delete(key, count)
                with self._count_lock:
                    self._sbf.total_count -= count
                    self.operations += 1
            finally:
                self._release(taken)
        finally:
            self._gate.exit_mutate()

    def set(self, key: object, count: int, *,
            timeout: float | None = None) -> None:
        """Force ``f_key := count``.

        Unlike inserts/deletes, a set does not commute with concurrent
        operations on overlapping counters, so it runs under the writer
        lock plus every stripe — fully serialised, exactly the order the
        WAL records it.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._enter_gate(read=False, timeout=timeout)
        try:
            taken = self._acquire(self._all_locks(), timeout)
            try:
                if isinstance(self._handle, DurableSBF):
                    self._handle.set(key, count)
                else:
                    current = self._sbf.query(key)
                    if count > current:
                        self._sbf.insert(key, count - current)
                    elif count < current:
                        self._sbf.delete(key, current - count)
            finally:
                self._release(taken)
        finally:
            self._gate.exit_mutate()
        with self._count_lock:
            self.operations += 1

    # -- bulk operations ---------------------------------------------------
    # Bulk batches touch arbitrary counters, so striping buys nothing:
    # they run under the writer lock plus every stripe — one lock
    # acquisition for the whole batch, then the vectorised kernels.
    def insert_many(self, keys, counts=None, *,
                    timeout: float | None = None) -> None:
        """Apply a whole insert batch atomically w.r.t. other threads."""
        n = len(keys)
        self._enter_gate(read=False, timeout=timeout)
        try:
            taken = self._acquire(self._all_locks(), timeout)
            try:
                if isinstance(self._handle, DurableSBF):
                    self._handle.insert_many(keys, counts)
                else:
                    self._sbf.insert_many(keys, counts)
            finally:
                self._release(taken)
        finally:
            self._gate.exit_mutate()
        with self._count_lock:
            self.operations += n

    def delete_many(self, keys, counts=None, *,
                    timeout: float | None = None) -> None:
        """Apply a whole delete batch atomically w.r.t. other threads."""
        n = len(keys)
        self._enter_gate(read=False, timeout=timeout)
        try:
            taken = self._acquire(self._all_locks(), timeout)
            try:
                if isinstance(self._handle, DurableSBF):
                    self._handle.delete_many(keys, counts)
                else:
                    self._sbf.delete_many(keys, counts)
            finally:
                self._release(taken)
        finally:
            self._gate.exit_mutate()
        with self._count_lock:
            self.operations += n

    def query_many(self, keys, *, timeout: float | None = None):
        """Vectorised estimates for a batch, on a consistent cut.

        Rides the shared side of the group gate: it takes *no* stripe
        locks, so any number of concurrent ``query_many`` batches overlap
        — the gate only holds off mutating paths (and is held off by
        them), which is all a read needs.  The cut is consistent because
        no mutator runs while any reader is inside.
        """
        self._enter_gate(read=True, timeout=timeout)
        try:
            return self._sbf.query_many(keys)
        finally:
            self._gate.exit_read()

    # -- reads -----------------------------------------------------------
    def query(self, key: object, *, timeout: float | None = None) -> int:
        """Frequency estimate under the key's stripes (a consistent read
        of the key's own counters; unrelated stripes keep moving)."""
        taken = self._acquire(self._key_locks(key), timeout)
        try:
            return self._sbf.query(key)
        finally:
            self._release(taken)

    def contains(self, key: object, threshold: int = 1, *,
                 timeout: float | None = None) -> bool:
        return self.query(key, timeout=timeout) >= threshold

    @property
    def total_count(self) -> int:
        with self._count_lock:
            return self._sbf.total_count

    @property
    def raw(self) -> SpectralBloomFilter | DurableSBF:
        """The wrapped handle (unlocked — combine with :meth:`exclusive`)."""
        return self._handle

    @property
    def sbf(self) -> SpectralBloomFilter:
        """The underlying in-memory filter (unlocked — see :meth:`exclusive`)."""
        return self._sbf

    def add_operations(self, n: int) -> None:
        """Credit *n* externally-applied operations to the ops counter.

        Batch executors apply many operations under one :meth:`exclusive`
        section; this keeps :attr:`operations` honest for them.
        """
        with self._count_lock:
            self.operations += n

    # -- whole-filter moments ----------------------------------------------
    @contextmanager
    def exclusive(self, timeout: float | None = None,
                  ) -> Iterator[SpectralBloomFilter | DurableSBF]:
        """Freeze the filter and yield the wrapped handle.

        Takes the writer lock plus every stripe (bounded by *timeout*), so
        the caller sees — and may mutate — a consistent cut with no other
        thread in flight.  This is the one-lock-acquisition-per-batch
        primitive used by the serving layer's batch executor and by
        snapshot-consistent resharding: while the section is open the
        caller operates on the raw :class:`SpectralBloomFilter` /
        :class:`DurableSBF` directly, paying the locking cost once instead
        of once per operation.

        Raises:
            LockTimeout: if the locks cannot all be had within *timeout*.
        """
        self._enter_gate(read=False, timeout=timeout)
        try:
            taken = self._acquire(self._all_locks(), timeout)
            try:
                yield self._handle
            finally:
                self._release(taken)
        finally:
            self._gate.exit_mutate()

    def checkpoint(self, *, timeout: float | None = None):
        """Freeze a consistent cut and checkpoint it.

        Takes the writer lock plus all stripes (bounded), so the snapshot
        is a linearisation point: it reflects every operation that
        completed before it and none that started after.  Durable filters
        run their WAL-sync → snapshot → log-reset dance; plain filters
        return a checksummed v2 frame of the frozen state.
        """
        from repro.core.serialize import dump_sbf
        taken = self._acquire(self._all_locks(), timeout)
        try:
            if isinstance(self._handle, DurableSBF):
                return self._handle.checkpoint()
            return dump_sbf(self._sbf)
        finally:
            self._release(taken)

    def check_integrity(self, *, timeout: float | None = None) -> list[str]:
        """Run the structural audit on a frozen cut."""
        taken = self._acquire(self._all_locks(), timeout)
        try:
            return self._sbf.check_integrity()
        finally:
            self._release(taken)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConcurrentSBF({self._sbf!r}, stripes={self.stripes}, "
                f"timeout={self.timeout})")
