"""Crash-consistent persistence for spectral filters.

Everything the in-memory SBF stack lacks to serve as a durable system:

- :mod:`repro.persist.wal` — sequence-numbered, CRC-trailed write-ahead
  log with a configurable fsync policy;
- :mod:`repro.persist.snapshot` — atomic, generation-numbered checkpoints
  (write-temp → fsync → rename) over the serialize-v2 frame;
- :mod:`repro.persist.recovery` — ARIES-lite ``recover()``: newest good
  snapshot, replay of the intact WAL suffix, torn-tail truncation,
  integrity audit;
- :mod:`repro.persist.durable` — :class:`DurableSBF`, the write-ahead
  serving handle tying the three together;
- :mod:`repro.persist.concurrent` — :class:`ConcurrentSBF`, striped
  locking with bounded waits for multi-threaded serving;
- :mod:`repro.persist.crashsim` — deterministic filesystem fault
  injection (torn writes, lost renames/fsyncs), the disk sibling of
  :mod:`repro.db.faults`.
"""

from repro.persist.concurrent import ConcurrentSBF, LockTimeout
from repro.persist.crashsim import (
    CrashIO,
    FileIO,
    SimulatedCrash,
    flip_bit,
    torn_write,
)
from repro.persist.durable import DurableSBF
from repro.persist.recovery import (
    RecoveryError,
    RecoveryReport,
    recover,
)
from repro.persist.snapshot import (
    SnapshotError,
    SnapshotStore,
    atomic_write_bytes,
    read_frame_file,
)
from repro.persist.wal import (
    OP_DELETE,
    OP_DELETE_MANY,
    OP_INSERT,
    OP_INSERT_MANY,
    OP_SET,
    ScanResult,
    WALError,
    WALRecord,
    WriteAheadLog,
    replay,
)

__all__ = [
    "ConcurrentSBF",
    "LockTimeout",
    "CrashIO",
    "FileIO",
    "SimulatedCrash",
    "flip_bit",
    "torn_write",
    "DurableSBF",
    "RecoveryError",
    "RecoveryReport",
    "recover",
    "SnapshotError",
    "SnapshotStore",
    "atomic_write_bytes",
    "read_frame_file",
    "OP_INSERT",
    "OP_DELETE",
    "OP_INSERT_MANY",
    "OP_DELETE_MANY",
    "OP_SET",
    "ScanResult",
    "WALError",
    "WALRecord",
    "WriteAheadLog",
    "replay",
]
