"""Append-only write-ahead log of filter operations.

Record layout (little-endian)::

    record := length:u32 | seq:u64 | op:u8 | body | crc32:u32

``length`` counts everything after itself (``seq`` through ``crc32``), so
a reader can skip records without parsing bodies; the CRC covers ``seq``
through ``body``.  Sequence numbers are assigned by the log, start at 1,
and increase strictly — across checkpoint resets too — so a snapshot
taken at sequence ``S`` tells recovery exactly which records to replay
(``seq > S``).

Torn-write discipline: a crash can leave at most a *suffix* of the file
damaged.  :func:`replay` therefore stops at the first record that is
incomplete, fails its CRC, or breaks sequence monotonicity, and reports
the byte offset of the last good record so the caller can truncate the
tail.  A corrupt record is **never** yielded; everything before it is
provably intact.

Fsync policy (the classic durability/throughput dial):

- ``"always"`` — fsync after every append; an acknowledged operation is
  durable even through an immediate power cut.
- ``N`` (int) — fsync every *N* appends; bounds loss to the last ``N-1``
  acknowledged operations.
- ``"checkpoint"`` — fsync only at checkpoints (and explicit
  :meth:`sync` calls); fastest, loses up to a whole checkpoint interval.

Bodies are JSON, so logged keys must be JSON scalars (``str``/``int``/
``float``/``bool``/``None``) — the natural key types of a serving system;
:meth:`log_insert` rejects anything else up front rather than letting a
non-round-tripping key poison replay.
"""

from __future__ import annotations

import json
import os.path
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.persist.crashsim import FileIO

#: operation codes stored in WAL records
OP_INSERT = 1
OP_DELETE = 2
OP_SET = 3
#: bulk operations: the body is ``[keys, counts]`` (two equal-length
#: lists) instead of ``[key, count]`` — one record, one fsync, one
#: sequence number for a whole batch.
OP_INSERT_MANY = 4
OP_DELETE_MANY = 5

OP_NAMES = {OP_INSERT: "insert", OP_DELETE: "delete", OP_SET: "set",
            OP_INSERT_MANY: "insert_many", OP_DELETE_MANY: "delete_many"}

#: ops whose body carries a key/count *batch* rather than a single pair
BULK_OPS = frozenset({OP_INSERT_MANY, OP_DELETE_MANY})

_LEN = struct.Struct("<I")
_SEQ_OP = struct.Struct("<QB")
_CRC = struct.Struct("<I")
#: bytes of a record that are not body: seq(8) + op(1) + crc(4)
_OVERHEAD = _SEQ_OP.size + _CRC.size

#: key types that round-trip through JSON bodies unchanged; shared with
#: the app-layer checkpoints (e.g. the sliding window's buffer items)
SCALAR_KEY_TYPES = (str, int, float, bool, type(None))


class WALError(ValueError):
    """A write-ahead log file is structurally unusable (not merely torn)."""


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record.

    For bulk ops (:data:`OP_INSERT_MANY` / :data:`OP_DELETE_MANY`),
    ``key`` holds the *list* of keys and ``count`` the matching list of
    counts.
    """

    seq: int
    op: int
    key: object
    count: object
    #: byte offset of the record's start in the file
    offset: int
    #: total encoded size in bytes
    size: int

    @property
    def op_name(self) -> str:
        return OP_NAMES.get(self.op, f"op{self.op}")


@dataclass(frozen=True)
class ScanResult:
    """Outcome of walking a WAL file from the front.

    ``good_end`` is the offset one past the last intact record; anything
    beyond it is a torn or corrupt tail (``reason`` says why it stopped,
    ``None`` for a clean end-of-file).
    """

    last_seq: int
    records: int
    good_end: int
    reason: str | None


def _encode(seq: int, op: int, key: object, count: int) -> bytes:
    body = json.dumps([key, count], sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    inner = _SEQ_OP.pack(seq, op) + body
    crc = zlib.crc32(inner) & 0xFFFFFFFF
    return _LEN.pack(len(inner) + _CRC.size) + inner + _CRC.pack(crc)


def _iter_records(data: bytes) -> Iterator[WALRecord]:
    """Yield intact records; raise ``_Stop`` at the first damaged one."""
    offset = 0
    prev_seq = 0
    total = len(data)
    while offset < total:
        if offset + _LEN.size > total:
            raise _Stop(offset, "torn length prefix")
        (length,) = _LEN.unpack_from(data, offset)
        if length < _OVERHEAD:
            raise _Stop(offset, f"record length {length} below minimum")
        end = offset + _LEN.size + length
        if end > total:
            raise _Stop(offset, f"torn record body ({end - total} bytes "
                                 f"missing)")
        inner = data[offset + _LEN.size:end - _CRC.size]
        (stored_crc,) = _CRC.unpack_from(data, end - _CRC.size)
        if stored_crc != (zlib.crc32(inner) & 0xFFFFFFFF):
            raise _Stop(offset, "checksum mismatch")
        seq, op = _SEQ_OP.unpack_from(inner)
        if seq <= prev_seq:
            raise _Stop(offset, f"sequence regression ({seq} after "
                                 f"{prev_seq})")
        if op not in OP_NAMES:
            raise _Stop(offset, f"unknown op code {op}")
        try:
            body = json.loads(inner[_SEQ_OP.size:].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _Stop(offset, f"corrupt body: {exc}")
        if not isinstance(body, list) or len(body) != 2:
            raise _Stop(offset, f"malformed body {body!r}")
        if op in BULK_OPS:
            keys, counts = body
            if (not isinstance(keys, list) or not isinstance(counts, list)
                    or len(keys) != len(counts)
                    or any(not isinstance(c, int) or isinstance(c, bool)
                           or c < 0 for c in counts)):
                raise _Stop(offset, f"malformed bulk body at seq {seq}")
        elif not isinstance(body[1], int) or isinstance(body[1], bool):
            raise _Stop(offset, f"malformed body {body!r}")
        yield WALRecord(seq=seq, op=op, key=body[0], count=body[1],
                        offset=offset, size=end - offset)
        prev_seq = seq
        offset = end


class _Stop(Exception):
    """Internal: scanning hit the damaged tail at ``offset``."""

    def __init__(self, offset: int, reason: str):
        super().__init__(reason)
        self.offset = offset
        self.reason = reason


def replay(path: str, *, io: FileIO | None = None,
           after_seq: int = 0) -> tuple[list[WALRecord], ScanResult]:
    """Read every intact record with ``seq > after_seq``.

    Returns the records plus a :class:`ScanResult` describing where the
    intact prefix ends.  Corrupt or torn records are never returned, and
    nothing after the first damaged byte is trusted (a later record with
    a valid CRC could be a stale leftover from a recycled file).
    """
    io = io or FileIO()
    if not io.exists(path):
        return [], ScanResult(last_seq=after_seq, records=0, good_end=0,
                              reason=None)
    with io.open(path, "rb") as handle:
        data = handle.read()
    records: list[WALRecord] = []
    last_seq = 0
    good_end = 0
    reason = None
    try:
        for record in _iter_records(data):
            last_seq = record.seq
            good_end = record.offset + record.size
            if record.seq > after_seq:
                records.append(record)
    except _Stop as stop:
        good_end = stop.offset
        reason = stop.reason
    return records, ScanResult(last_seq=max(last_seq, after_seq),
                               records=len(records), good_end=good_end,
                               reason=reason)


class WriteAheadLog:
    """Appender half of the log (reading is :func:`replay`'s job).

    Opening an existing file scans it, truncates any torn tail (the file
    may be the survivor of a crash), and continues the sequence numbering
    after the last intact record.  Appends are thread-safe: a lock orders
    concurrent writers, so the on-disk record order is a linearisation of
    the acknowledged operations.

    Args:
        path: log file location.
        fsync: ``"always"`` (default), an int *N* for every-N-appends, or
            ``"checkpoint"`` — see the module docstring for the trade-off.
        io: filesystem layer (a :class:`~repro.persist.crashsim.CrashIO`
            under test).
        next_seq: first sequence number to assign; defaults to one past
            whatever the existing file ends with.  Pass a value after an
            external recovery decided the true horizon (e.g. a snapshot
            newer than the log).
    """

    def __init__(self, path: str, *, fsync: object = "always",
                 io: FileIO | None = None, next_seq: int | None = None):
        self.path = str(path)
        self.io = io or FileIO()
        self._policy_every = self._parse_policy(fsync)
        self.fsync_policy = fsync
        self._lock = threading.Lock()
        self._since_sync = 0
        self.appends = 0
        existed = self.io.exists(self.path)
        _, scan = replay(self.path, io=self.io)
        if scan.reason is not None or (
                self.io.exists(self.path)
                and self.io.file_size(self.path) > scan.good_end):
            self.io.truncate(self.path, scan.good_end)
        seq = scan.last_seq + 1
        if next_seq is not None:
            if next_seq <= scan.last_seq:
                raise WALError(
                    f"next_seq {next_seq} would reuse sequence numbers "
                    f"(log already ends at {scan.last_seq})")
            seq = next_seq
        self.next_seq = seq
        self._file = self.io.open(self.path, "ab")
        if not existed:
            # A freshly created file is only durable once its directory
            # entry is — otherwise a power cut can drop the whole file,
            # losing appends already acknowledged under fsync="always".
            self.io.fsync_dir(os.path.dirname(self.path) or ".")

    @staticmethod
    def _parse_policy(fsync: object) -> int:
        """Normalise the policy to 'fsync every N appends' (0 = never)."""
        if fsync == "always":
            return 1
        if fsync == "checkpoint":
            return 0
        if isinstance(fsync, int) and not isinstance(fsync, bool) \
                and fsync >= 1:
            return fsync
        raise ValueError(
            f"fsync policy must be 'always', 'checkpoint', or a positive "
            f"int, got {fsync!r}")

    # -- appending -------------------------------------------------------
    def _append(self, op: int, key: object, count: int) -> int:
        if not isinstance(key, SCALAR_KEY_TYPES):
            raise TypeError(
                f"WAL keys must be JSON scalars (str/int/float/bool/None), "
                f"got {type(key).__name__}")
        if not isinstance(count, int) or isinstance(count, bool):
            raise TypeError(f"count must be an int, got {count!r}")
        with self._lock:
            seq = self.next_seq
            self._file.write(_encode(seq, op, key, count))
            self.next_seq = seq + 1
            self.appends += 1
            self._since_sync += 1
            if self._policy_every and self._since_sync >= self._policy_every:
                self.io.fsync(self._file)
                self._since_sync = 0
        return seq

    def log_insert(self, key: object, count: int = 1) -> int:
        """Append an insert record; returns its sequence number."""
        return self._append(OP_INSERT, key, count)

    def log_delete(self, key: object, count: int = 1) -> int:
        """Append a delete record; returns its sequence number."""
        return self._append(OP_DELETE, key, count)

    def log_set(self, key: object, count: int) -> int:
        """Append a set-frequency record (``f_key := count``)."""
        if count < 0:
            raise ValueError(f"set count must be >= 0, got {count}")
        return self._append(OP_SET, key, count)

    def _append_bulk(self, op: int, keys: list, counts: list) -> int:
        if len(keys) != len(counts):
            raise ValueError(
                f"got {len(keys)} keys but {len(counts)} counts")
        for key in keys:
            if not isinstance(key, SCALAR_KEY_TYPES):
                raise TypeError(
                    f"WAL keys must be JSON scalars (str/int/float/bool/"
                    f"None), got {type(key).__name__}")
        for count in counts:
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 0:
                raise ValueError(
                    f"bulk counts must be ints >= 0, got {count!r}")
        with self._lock:
            seq = self.next_seq
            self._file.write(_encode(seq, op, keys, counts))
            self.next_seq = seq + 1
            self.appends += 1
            self._since_sync += 1
            if self._policy_every and self._since_sync >= self._policy_every:
                self.io.fsync(self._file)
                self._since_sync = 0
        return seq

    def log_insert_many(self, keys: list, counts: list) -> int:
        """Append one record covering a whole insert batch.

        A batch is durable (or lost) as a unit: one record, one CRC, one
        fsync — the amortisation that makes bulk ingest worth logging.
        """
        return self._append_bulk(OP_INSERT_MANY, keys, counts)

    def log_delete_many(self, keys: list, counts: list) -> int:
        """Append one record covering a whole delete batch."""
        return self._append_bulk(OP_DELETE_MANY, keys, counts)

    # -- durability points -------------------------------------------------
    def sync(self) -> None:
        """Force everything appended so far to disk, whatever the policy."""
        with self._lock:
            self.io.fsync(self._file)
            self._since_sync = 0

    def reset(self) -> None:
        """Discard all records (their effects are in a durable snapshot).

        Sequence numbering continues — snapshots reference absolute
        sequence numbers, so they must never be reused.
        """
        with self._lock:
            self._file.close()
            with self.io.open(self.path, "wb") as handle:
                self.io.fsync(handle)
            self._file = self.io.open(self.path, "ab")
            self._since_sync = 0

    def close(self) -> None:
        if not self._file.closed:
            self.io.fsync(self._file)
            self._file.close()

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self.next_seq - 1

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
