"""An in-memory relation: named columns over row tuples.

Deliberately tiny — just the operations the §5 applications and their
ground-truth checks need: scans, selection, projection, group-by counting
and hash equi-joins.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Sequence


class Relation:
    """A named table with a fixed schema.

    Args:
        name: relation name (used in diagnostics).
        columns: ordered column names.
        rows: iterable of tuples matching the schema.
    """

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence] = ()):
        if not columns:
            raise ValueError("a relation needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {columns}")
        self.name = name
        self.columns = tuple(columns)
        self._index = {c: i for i, c in enumerate(self.columns)}
        self.rows: list[tuple] = []
        for row in rows:
            self.append(row)

    # ------------------------------------------------------------------
    def append(self, row: Sequence) -> None:
        """Add one row (validated against the schema arity)."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"{self.name}: row of arity {len(row)} does not match "
                f"schema {self.columns}")
        self.rows.append(row)

    def extend(self, rows: Iterable[Sequence]) -> None:
        """Add many rows."""
        for row in rows:
            self.append(row)

    def column_position(self, column: str) -> int:
        """Index of *column* in the schema."""
        try:
            return self._index[column]
        except KeyError:
            raise KeyError(
                f"{self.name} has no column {column!r}; schema is "
                f"{self.columns}") from None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def scan(self, column: str) -> Iterator:
        """Iterate the values of one column."""
        pos = self.column_position(column)
        for row in self.rows:
            yield row[pos]

    def where(self, predicate: Callable[[tuple], bool]) -> "Relation":
        """Selection: rows satisfying *predicate*."""
        return Relation(f"{self.name}_sel", self.columns,
                        (row for row in self.rows if predicate(row)))

    def project(self, columns: Sequence[str]) -> "Relation":
        """Projection onto *columns* (duplicates preserved, bag semantics)."""
        positions = [self.column_position(c) for c in columns]
        return Relation(f"{self.name}_proj", columns,
                        (tuple(row[p] for p in positions)
                         for row in self.rows))

    def group_by_count(self, column: str) -> dict:
        """``SELECT column, count(*) ... GROUP BY column`` as a dict."""
        return dict(Counter(self.scan(column)))

    def distinct(self, column: str) -> set:
        """Distinct values of one column."""
        return set(self.scan(column))

    def join(self, other: "Relation", column: str) -> "Relation":
        """Exact hash equi-join on a shared *column* (ground truth).

        The output schema is this relation's columns followed by the other
        relation's columns minus the join column.
        """
        left_pos = self.column_position(column)
        right_pos = other.column_position(column)
        build: dict = {}
        for row in other.rows:
            build.setdefault(row[right_pos], []).append(row)
        out_columns = list(self.columns) + [
            c for c in other.columns if c != column]
        keep = [i for i, c in enumerate(other.columns) if c != column]
        result = Relation(f"{self.name}_join_{other.name}", out_columns)
        for row in self.rows:
            for match in build.get(row[left_pos], ()):
                result.append(row + tuple(match[i] for i in keep))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Relation({self.name!r}, columns={self.columns}, "
                f"rows={len(self.rows)})")
