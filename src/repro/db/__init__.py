"""Minimal relational / distributed substrate for the §5 applications.

The paper's applications run over database relations, some of them split
across remote sites connected by a network whose traffic Bloomjoins try to
minimise.  This package provides just enough machinery to express those
scenarios honestly:

- :class:`Relation` — an in-memory table with scans, filters, group-by
  counts and exact joins (the ground truth every app is checked against);
- :class:`Site` / :class:`Network` — named sites holding relations,
  exchanging messages over a channel that accounts bytes and round-trips.
"""

from repro.db.relation import Relation
from repro.db.site import Network, Site

__all__ = ["Relation", "Site", "Network"]
