"""Minimal relational / distributed substrate for the §5 applications.

The paper's applications run over database relations, some of them split
across remote sites connected by a network whose traffic Bloomjoins try to
minimise.  This package provides just enough machinery to express those
scenarios honestly:

- :class:`Relation` — an in-memory table with scans, filters, group-by
  counts and exact joins (the ground truth every app is checked against);
- :class:`Site` / :class:`Network` — named sites holding relations,
  exchanging messages over a channel that accounts bytes and round-trips;
- :class:`FaultyNetwork` / :class:`FaultPolicy` — seeded fault injection
  (drop / duplicate / corrupt / delay / reorder) at the physical layer;
- :class:`ReliableChannel` — checksummed, sequence-numbered transport
  with retry budgets and capped exponential backoff on top of either.
"""

from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.relation import Relation
from repro.db.site import Network, Site
from repro.db.transport import (
    ChannelStats,
    DeliveryFailed,
    ReliableChannel,
    TransportError,
)

__all__ = [
    "Relation",
    "Site",
    "Network",
    "FaultPolicy",
    "FaultyNetwork",
    "ReliableChannel",
    "ChannelStats",
    "DeliveryFailed",
    "TransportError",
]
