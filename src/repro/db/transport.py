"""Reliable framed transport over an unreliable :class:`Network`.

The fault-tolerance layer between the raw physical channel
(:meth:`Network.transmit`, which may drop, duplicate, corrupt, or reorder
frames — see :mod:`repro.db.faults`) and the protocols that need their
synopses delivered intact (Bloomjoins §5.3, Summary Cache §1.1.1).

A :class:`ReliableChannel` wraps each payload in a sequence-numbered,
CRC32-protected envelope and retries until an intact copy arrives:

- *timeouts* — an attempt with no intact arrival counts as a timeout and
  triggers a retransmission under capped exponential backoff with seeded
  jitter (de-synchronising retries across shards during fault storms).
  By default the substrate has no wall clock: the backoff is accumulated
  in :attr:`ChannelStats.backoff_seconds` rather than slept, keeping
  chaos tests deterministic; a real deployment passes ``sleep=time.sleep``
  to actually pace retransmissions;
- *retry budgets* — after ``max_retries`` retransmissions the channel
  gives up and raises :class:`DeliveryFailed`, letting protocols degrade
  gracefully (e.g. a Bloomjoin falls back to full-tuple shipping);
- *idempotent receive* — sequence numbers deduplicate duplicated frames
  and identify stale delayed copies of earlier transmissions;
- *metrics* — every attempt, retry, detected corruption, ignored
  duplicate, and give-up is counted in :class:`ChannelStats`.
"""

from __future__ import annotations

import random
import struct
import zlib

from repro.db.site import Network

#: transport envelope magic ("Reliable CHannel v1")
_ENVELOPE_MAGIC = b"RCH1"
_HEADER = struct.Struct("<4sII")          # magic, seq, payload length
_TRAILER = struct.Struct("<I")            # CRC32 over header + payload


class TransportError(RuntimeError):
    """Base class for transport-layer failures."""


class DeliveryFailed(TransportError):
    """The retry budget was exhausted without an intact delivery.

    Attributes:
        stats: the channel's :class:`ChannelStats` at the moment of
            giving up (shared object, keeps updating afterwards).
    """

    def __init__(self, message: str, stats: "ChannelStats"):
        super().__init__(message)
        self.stats = stats


def seal_envelope(seq: int, payload: bytes) -> bytes:
    """Wrap *payload* in the sequence-numbered, checksummed envelope."""
    if seq < 0:
        raise ValueError(f"sequence numbers are non-negative, got {seq}")
    body = _HEADER.pack(_ENVELOPE_MAGIC, seq, len(payload)) + payload
    return body + _TRAILER.pack(zlib.crc32(body) & 0xFFFFFFFF)


def open_envelope(envelope: bytes) -> tuple[int, bytes] | None:
    """Unwrap an envelope; returns ``(seq, payload)`` or ``None`` if the
    frame is truncated, garbled, or fails its checksum."""
    if len(envelope) < _HEADER.size + _TRAILER.size:
        return None
    magic, seq, length = _HEADER.unpack_from(envelope)
    if magic != _ENVELOPE_MAGIC:
        return None
    if len(envelope) != _HEADER.size + length + _TRAILER.size:
        return None
    (stored_crc,) = _TRAILER.unpack_from(envelope, len(envelope) - 4)
    if stored_crc != zlib.crc32(envelope[:-4]) & 0xFFFFFFFF:
        return None
    return seq, envelope[_HEADER.size:-_TRAILER.size]


class ChannelStats:
    """Delivery metrics for one :class:`ReliableChannel`."""

    __slots__ = ("attempts", "retries", "delivered", "timeouts",
                 "corrupt_detected", "duplicates_ignored", "stale_frames",
                 "gave_up", "backoff_seconds", "deadline_abandons",
                 "budget_denied")

    def __init__(self):
        self.attempts = 0            # transmissions put on the wire
        self.retries = 0             # attempts beyond the first, per send
        self.delivered = 0           # payloads accepted intact
        self.timeouts = 0            # attempts with no intact arrival
        self.corrupt_detected = 0    # checksum / validation rejections
        self.duplicates_ignored = 0  # redeliveries of an accepted seq
        self.stale_frames = 0        # late copies of older sequences
        self.gave_up = 0             # sends that exhausted the budget
        self.backoff_seconds = 0.0   # simulated backoff time accumulated
        self.deadline_abandons = 0   # sends cut short by caller deadlines
        self.budget_denied = 0       # retries refused by the retry budget

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        """Accumulate *other* into this stats object (for fleet totals)."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ChannelStats({fields})"


class ReliableChannel:
    """A unidirectional reliable byte-frame channel ``sender -> recipient``.

    Args:
        network: the (possibly faulty) substrate to transmit over.
        max_retries: retransmissions allowed per send before giving up
            (the retry budget; total attempts = ``max_retries + 1``).
        base_backoff: simulated seconds slept before the first retry.
        max_backoff: cap on the exponential backoff.
        jitter: fractional jitter applied to each backoff (0.5 means the
            sleep is scaled by a seeded uniform draw from [1.0, 1.5]).
        seed: seeds the jitter RNG — chaos runs are fully reproducible.
        validator: optional callable applied to each arriving payload; a
            :class:`ValueError` (e.g. ``WireFormatError``) marks the frame
            corrupt and triggers a retransmission.
        sleep: optional callable actually slept for each backoff (e.g.
            ``time.sleep`` in a real deployment).  The default ``None``
            keeps the simulation convention: backoff time is *accounted*
            in :attr:`ChannelStats.backoff_seconds` but never slept, so
            seeded chaos tests replay instantly and deterministically.
            The jittered exponential schedule is identical either way —
            the point of the jitter is that a fault storm does not
            resynchronise retries across shards.
        budget: optional retry budget shared across sends (and possibly
            across channels): each retry must ``try_spend()`` a token and
            each delivery ``earn()``\\ s one back, so correlated failures
            drain the bucket and degrade to fast :class:`DeliveryFailed`
            refusals instead of a retry storm.  Duck-typed (any object
            with ``try_spend()``/``earn()`` works — in practice a
            :class:`repro.serve.resilience.RetryBudget`) so this layer
            never imports the serve layer.
    """

    def __init__(self, network: Network, sender: str, recipient: str, *,
                 max_retries: int = 6, base_backoff: float = 0.05,
                 max_backoff: float = 2.0, jitter: float = 0.5,
                 seed: int = 0, validator=None, sleep=None, budget=None):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if base_backoff <= 0 or max_backoff <= 0:
            raise ValueError("backoff durations must be positive")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.network = network
        self.sender = sender
        self.recipient = recipient
        self.max_retries = int(max_retries)
        self.base_backoff = float(base_backoff)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self.validator = validator
        self.sleep = sleep
        self.budget = budget
        self.stats = ChannelStats()
        self._rng = random.Random(seed)
        self._next_seq = 0
        self._seen: set[int] = set()

    def _backoff(self, retry_number: int) -> float:
        """Capped exponential backoff with seeded jitter, in seconds."""
        sleep = min(self.max_backoff,
                    self.base_backoff * (2 ** (retry_number - 1)))
        return sleep * (1.0 + self.jitter * self._rng.random())

    def send(self, label: str, payload: bytes, *, validator=None,
             deadline=None) -> bytes:
        """Deliver *payload* reliably; returns the accepted payload bytes.

        Retries (with capped exponential backoff) until an arrival passes
        the envelope checksum, sequence-number dedup, and the optional
        *validator*.

        *deadline* (duck-typed — any object with ``remaining()`` and
        ``check()``, in practice a
        :class:`repro.serve.resilience.Deadline`) bounds the whole send:
        it is checked before every retry (no backoff is accrued for a
        caller that already timed out — abandons are counted in
        :attr:`ChannelStats.deadline_abandons`), each backoff pause is
        capped at the time remaining, and a payload accepted only after
        expiry is discarded (the caller's wait is over; a late answer is
        no answer).

        Raises:
            DeliveryFailed: after ``max_retries`` retransmissions without
                an intact delivery, or when the retry budget refuses a
                retransmission.
            Exception: whatever ``deadline.check()`` raises
                (:class:`repro.serve.resilience.DeadlineExceeded`) once
                the deadline has passed.
        """
        validator = validator if validator is not None else self.validator
        if deadline is not None:
            deadline.check(label)
        seq = self._next_seq
        self._next_seq += 1
        envelope = seal_envelope(seq, bytes(payload))
        stats = self.stats
        for attempt in range(self.max_retries + 1):
            if attempt:
                if deadline is not None and deadline.remaining() <= 0.0:
                    stats.deadline_abandons += 1
                    deadline.check(label)
                if self.budget is not None and not self.budget.try_spend():
                    stats.budget_denied += 1
                    stats.gave_up += 1
                    raise DeliveryFailed(
                        f"{label}: retry budget empty delivering seq {seq} "
                        f"from {self.sender} to {self.recipient} after "
                        f"{attempt} attempt(s)", stats)
                stats.retries += 1
                pause = self._backoff(attempt)
                if deadline is not None:
                    pause = min(pause, max(deadline.remaining(), 0.0))
                stats.backoff_seconds += pause
                if self.sleep is not None:
                    self.sleep(pause)
            stats.attempts += 1
            accepted = None
            arrivals = self.network.transmit(self.sender, self.recipient,
                                             label, envelope)
            for arrival in arrivals:
                opened = open_envelope(arrival)
                if opened is None:
                    stats.corrupt_detected += 1
                    continue
                got_seq, got_payload = opened
                if got_seq in self._seen:
                    stats.duplicates_ignored += 1
                    continue
                if got_seq != seq:
                    # A delayed copy of an earlier sequence finally arrived;
                    # that send already concluded, so the copy is stale.
                    self._seen.add(got_seq)
                    stats.stale_frames += 1
                    continue
                if validator is not None:
                    try:
                        validator(got_payload)
                    except ValueError:
                        # CRC-passing but semantically invalid: treat as
                        # corrupt and leave seq unclaimed so a retry can
                        # still succeed.
                        stats.corrupt_detected += 1
                        continue
                self._seen.add(got_seq)
                stats.delivered += 1
                accepted = got_payload
            if accepted is not None:
                if self.budget is not None:
                    self.budget.earn()
                if deadline is not None and deadline.remaining() <= 0.0:
                    # Accepted, but past the caller's deadline — e.g. a
                    # slowness fault stalled the wire.  The caller has
                    # already timed out; delivering now would report
                    # success nobody waited for.
                    stats.deadline_abandons += 1
                    deadline.check(label)
                return accepted
            stats.timeouts += 1
        stats.gave_up += 1
        raise DeliveryFailed(
            f"{label}: gave up delivering seq {seq} from {self.sender} to "
            f"{self.recipient} after {self.max_retries + 1} attempts",
            stats)
