"""Deterministic fault injection for the distributed substrate.

Real deployments of filter-exchange protocols (Bloomjoins §5.3, Summary
Cache §1.1.1) must survive dropped, duplicated, delayed/reordered, and
bit-corrupted frames.  This module makes those faults *reproducible*:
a :class:`FaultyNetwork` is a drop-in :class:`~repro.db.site.Network`
subclass whose :meth:`~FaultyNetwork.transmit` applies a per-channel
:class:`FaultPolicy` — each policy owns a seeded RNG, so a chaos run with
the same policies and the same traffic replays the exact same fault
schedule.

Traffic accounting stays intact: every transmission attempt (including
duplicate copies) is charged to the ledger, so ``Network.breakdown()``
still reports what actually crossed the wire.

The filesystem sibling of this module is
:mod:`repro.persist.crashsim`, which injects torn writes, lost renames,
and lost fsyncs into the durability layer with the same determinism
guarantee: one seed/configuration, one reproducible fault schedule.
"""

from __future__ import annotations

import random

from repro.db.site import Network

#: fault decisions drawn by :meth:`FaultPolicy.decide`
OK = "ok"
DROP = "drop"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"
DELAY = "delay"
REORDER = "reorder"
SLOW = "slow"


class FaultPolicy:
    """Seeded per-channel fault schedule.

    Each frame independently suffers at most one fault, drawn from the
    configured probabilities (which must sum to at most 1):

    - ``drop``: the frame never arrives;
    - ``duplicate``: two identical copies arrive (both charged);
    - ``corrupt``: one random bit of the frame is flipped;
    - ``delay`` / ``reorder``: the frame is held back and delivered after
      the *next* frame on the same channel — i.e. late and out of order.
      (The two names share one mechanism; they are counted separately so
      schedules read naturally.)
    - ``slow``: the frame arrives intact but ``slow_seconds`` late *in
      time* (not in order) — the gray-failure fault.  Slowness is only
      observable through a clock, so it takes effect when the owning
      :class:`FaultyNetwork` has an ``advance`` hook wired to one.

    Separate from the fault draw, ``latency`` is the channel's
    deterministic per-frame transit time, charged on *every* transmit
    through the ``advance`` hook — it gives a healthy channel a non-zero
    baseline, which is what makes "slow replica p99 within 2x of
    healthy" a meaningful claim.

    Args:
        seed: RNG seed; identical seeds replay identical fault schedules.
    """

    def __init__(self, *, drop: float = 0.0, duplicate: float = 0.0,
                 corrupt: float = 0.0, delay: float = 0.0,
                 reorder: float = 0.0, slow: float = 0.0,
                 slow_seconds: float = 0.05, latency: float = 0.0,
                 seed: int = 0):
        rates = {"drop": drop, "duplicate": duplicate, "corrupt": corrupt,
                 "delay": delay, "reorder": reorder, "slow": slow}
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} probability must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-12:
            raise ValueError(
                f"fault probabilities must sum to <= 1, got {rates}")
        if slow_seconds < 0:
            raise ValueError(
                f"slow_seconds must be >= 0, got {slow_seconds}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.drop = float(drop)
        self.duplicate = float(duplicate)
        self.corrupt = float(corrupt)
        self.delay = float(delay)
        self.reorder = float(reorder)
        self.slow = float(slow)
        self.slow_seconds = float(slow_seconds)
        self.latency = float(latency)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def decide(self) -> str:
        """Draw the fault (or :data:`OK`) suffered by the next frame."""
        u = self._rng.random()
        for decision, rate in ((DROP, self.drop),
                               (DUPLICATE, self.duplicate),
                               (CORRUPT, self.corrupt),
                               (DELAY, self.delay),
                               (REORDER, self.reorder),
                               (SLOW, self.slow)):
            if u < rate:
                return decision
            u -= rate
        return OK

    def corrupt_bytes(self, frame: bytes) -> bytes:
        """Return *frame* with one random bit flipped."""
        if not frame:
            return frame
        position = self._rng.randrange(len(frame) * 8)
        mutated = bytearray(frame)
        mutated[position // 8] ^= 1 << (position % 8)
        return bytes(mutated)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPolicy(drop={self.drop}, duplicate={self.duplicate}, "
                f"corrupt={self.corrupt}, delay={self.delay}, "
                f"reorder={self.reorder}, slow={self.slow}, "
                f"latency={self.latency}, seed={self.seed})")


class FaultyNetwork(Network):
    """A :class:`Network` whose frame deliveries suffer injected faults.

    Plain ``send`` calls (the legacy payload-object path) are unaffected;
    faults apply to :meth:`transmit`, the physical layer the reliable
    transport drives.  With no policies configured the network behaves
    exactly like the base class, so it is a drop-in replacement.

    Time is injected too: *advance* is an optional callable taking
    seconds, invoked once per transmit with the frame's transit time
    (the policy's ``latency``, plus ``slow_seconds`` when the frame drew
    the ``slow`` fault).  Wired to a fake clock's ``advance`` it makes
    slowness *observable* — deadlines expire, latency EWMAs climb —
    while the chaos run stays fully deterministic.  Without it (the
    default) slow frames degrade to plain intact deliveries, so existing
    schedules replay unchanged.

    Attributes:
        faults: running totals of injected faults per kind
            (``drops`` / ``duplicates`` / ``corruptions`` / ``delays`` /
            ``reorders`` / ``slowdowns``) — chaos tests assert against
            these to prove every injected corruption was *detected*
            downstream.
    """

    def __init__(self, default_policy: FaultPolicy | None = None, *,
                 advance=None):
        super().__init__()
        self.default_policy = default_policy
        self.advance = advance
        self._policies: dict[tuple[str, str, str | None], FaultPolicy] = {}
        self._delayed: dict[tuple[str, str], list[bytes]] = {}
        self.faults = {"drops": 0, "duplicates": 0, "corruptions": 0,
                       "delays": 0, "reorders": 0, "slowdowns": 0}

    def set_policy(self, sender: str, recipient: str,
                   policy: FaultPolicy | None, *,
                   label: str | None = None) -> None:
        """Attach *policy* to the directed channel sender -> recipient.

        With *label* the policy applies only to frames carrying that
        message label (e.g. fault the ``"sbf"`` synopsis leg while the
        ``"fallback-tuples"`` leg stays clean).  ``None`` as the policy
        restores perfect delivery for the targeted traffic even when a
        default policy is configured.
        """
        self._policies[(sender, recipient, label)] = policy

    def policy_for(self, sender: str, recipient: str,
                   label: str | None = None) -> FaultPolicy | None:
        """The policy governing the given traffic, most specific first."""
        for key in ((sender, recipient, label), (sender, recipient, None)):
            if key in self._policies:
                return self._policies[key]
        return self.default_policy

    def pending_delayed(self, sender: str, recipient: str) -> int:
        """Frames currently held back on the given channel."""
        return len(self._delayed.get((sender, recipient), []))

    def transmit(self, sender: str, recipient: str, label: str,
                 frame: bytes) -> list[bytes]:
        if not isinstance(frame, (bytes, bytearray)):
            raise TypeError(
                f"transmit carries wire frames (bytes), got "
                f"{type(frame).__name__}")
        frame = bytes(frame)
        # Every attempt burns wire regardless of its fate.
        self.send(sender, recipient, label, frame, len(frame) * 8)
        key = (sender, recipient)
        held = self._delayed.pop(key, [])
        policy = self.policy_for(sender, recipient, label)
        arrivals: list[bytes] = []
        decision = OK if policy is None else policy.decide()
        if decision == DROP:
            self.faults["drops"] += 1
        elif decision == DUPLICATE:
            self.faults["duplicates"] += 1
            # The duplicate copy crossed the wire too.
            self.send(sender, recipient, label, frame, len(frame) * 8)
            arrivals += [frame, frame]
        elif decision == CORRUPT:
            self.faults["corruptions"] += 1
            arrivals.append(policy.corrupt_bytes(frame))
        elif decision in (DELAY, REORDER):
            self.faults["delays" if decision == DELAY else "reorders"] += 1
            self._delayed.setdefault(key, []).append(frame)
        else:
            if decision == SLOW:
                self.faults["slowdowns"] += 1
            arrivals.append(frame)
        # Transit time passes whatever the frame's fate: the channel's
        # baseline latency on every attempt, plus the stall when this
        # frame drew the slowness fault.
        if self.advance is not None and policy is not None:
            transit = policy.latency
            if decision == SLOW:
                transit += policy.slow_seconds
            if transit > 0.0:
                self.advance(transit)
        # Frames held back by earlier transmits arrive now, *after* the
        # current frame: late and out of order.
        arrivals.extend(held)
        return arrivals
