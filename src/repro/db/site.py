"""Simulated distributed sites with traffic accounting (§5.3 substrate).

A Bloomjoin's whole point is trading a small synopsis transmission for a
large tuple transmission, so the substrate's job is to *measure traffic*:
every message sent between sites carries an explicit size in bits, and the
:class:`Network` totals bytes and round-trips per experiment.

Message sizes use the same model-bits convention as the rest of the
repository: a Bloom filter costs ``m`` bits, an SBF costs its
``storage_bits()``, a tuple costs ``64`` bits per attribute (a register
value) unless the caller overrides it.
"""

from __future__ import annotations

from typing import Callable

from repro.db.relation import Relation

#: default model cost of one attribute value on the wire
BITS_PER_VALUE = 64


class Message:
    """One transmission: payload plus its accounted size."""

    __slots__ = ("sender", "recipient", "label", "payload", "bits")

    def __init__(self, sender: str, recipient: str, label: str,
                 payload: object, bits: int):
        self.sender = sender
        self.recipient = recipient
        self.label = label
        self.payload = payload
        self.bits = bits


class Network:
    """The channel between sites; totals traffic and rounds."""

    def __init__(self):
        self.messages: list[Message] = []

    def send(self, sender: str, recipient: str, label: str,
             payload: object, bits: int) -> object:
        """Deliver *payload*, charging *bits* to the traffic total."""
        if bits < 0:
            raise ValueError(f"message size must be >= 0, got {bits}")
        self.messages.append(Message(sender, recipient, label, payload,
                                     int(bits)))
        return payload

    def transmit(self, sender: str, recipient: str, label: str,
                 frame: bytes) -> list[bytes]:
        """Physical-layer delivery attempt of one wire frame.

        The frame is charged to the traffic ledger at its actual size and
        the method returns the list of frames that arrive at *recipient*
        from this attempt.  The base network is perfectly reliable — the
        frame arrives exactly once, intact — while fault-injecting
        subclasses (:class:`repro.db.faults.FaultyNetwork`) may return an
        empty list (drop), duplicates, a bit-flipped copy, or earlier
        delayed frames appended out of order.  Reliable transports
        (:class:`repro.db.transport.ReliableChannel`) sit on top of this
        hook.
        """
        if not isinstance(frame, (bytes, bytearray)):
            raise TypeError(
                f"transmit carries wire frames (bytes), got "
                f"{type(frame).__name__}")
        frame = bytes(frame)
        self.send(sender, recipient, label, frame, len(frame) * 8)
        return [frame]

    @property
    def total_bits(self) -> int:
        """All traffic so far, in bits."""
        return sum(msg.bits for msg in self.messages)

    @property
    def rounds(self) -> int:
        """Number of point-to-point transmissions (the paper's 'rounds')."""
        return len(self.messages)

    def reset(self) -> None:
        """Clear the traffic log (between experiment repetitions)."""
        self.messages.clear()

    def breakdown(self) -> dict[str, int]:
        """Bits per message label (synopsis vs tuples vs results...)."""
        out: dict[str, int] = {}
        for msg in self.messages:
            out[msg.label] = out.get(msg.label, 0) + msg.bits
        return out


class Site:
    """A named database site holding relations and talking to the network."""

    def __init__(self, name: str, network: Network):
        self.name = name
        self.network = network
        self.relations: dict[str, Relation] = {}

    def store(self, relation: Relation) -> Relation:
        """Register a relation at this site."""
        self.relations[relation.name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        """Fetch a local relation by name."""
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"site {self.name!r} has no relation {name!r}") from None

    def send(self, recipient: "Site", label: str, payload: object,
             bits: int) -> object:
        """Transmit *payload* to another site, charging *bits*."""
        return self.network.send(self.name, recipient.name, label,
                                 payload, bits)

    def send_tuples(self, recipient: "Site", label: str,
                    rows: list[tuple],
                    bits_per_value: int = BITS_PER_VALUE) -> list[tuple]:
        """Transmit rows, charged at *bits_per_value* per attribute."""
        bits = sum(len(row) for row in rows) * bits_per_value
        return self.send(recipient, label, rows, bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site({self.name!r}, relations={sorted(self.relations)})"


def two_sites(network: Network | None = None,
              names: tuple[str, str] = ("site1", "site2"),
              ) -> tuple[Site, Site, Network]:
    """Convenience: a fresh two-site topology (the Bloomjoin setting)."""
    network = network if network is not None else Network()
    return Site(names[0], network), Site(names[1], network), network


# Re-exported for callers that size custom messages.
def tuple_bits(rows: list[tuple],
               bits_per_value: int = BITS_PER_VALUE) -> int:
    """Model wire size of a list of tuples."""
    return sum(len(row) for row in rows) * bits_per_value


# Make the callable type available for documentation tools.
PayloadSizer = Callable[[object], int]
