"""A growable packed bit vector with arbitrary-width field access.

This is the "base array" of §4 of the paper: counters are embedded in their
``ceil(log C_i)``-bit binary representation, consecutively, and the index
structures above it hand out bit offsets.  The vector therefore has to
support reading and writing bit fields at arbitrary (unaligned) positions,
and shifting whole bit ranges when a counter expands into a slack
(§4.4's "push" operation).

Bits are stored LSB-first inside 64-bit words held in a plain Python list;
field values are plain non-negative ints, so fields wider than a word work
transparently (useful for the lookup-table keys of §4.3).
"""

from __future__ import annotations

from typing import Iterable

_WORD = 64
_WORD_MASK = (1 << _WORD) - 1


class BitVector:
    """A mutable bit array addressed by bit position.

    Positions are absolute bit indices starting at 0.  The vector grows on
    demand when written past its current length; reads past the end return
    zero bits (matching a zero-initialised base array).
    """

    __slots__ = ("_words", "_nbits")

    def __init__(self, nbits: int = 0):
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        self._nbits = nbits
        self._words: list[int] = [0] * ((nbits + _WORD - 1) // _WORD)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        """Build from an iterable of 0/1 values (index 0 first)."""
        bits = list(bits)
        vec = cls(len(bits))
        for i, bit in enumerate(bits):
            if bit:
                vec.set_bit(i)
        return vec

    def copy(self) -> "BitVector":
        dup = BitVector.__new__(BitVector)
        dup._nbits = self._nbits
        dup._words = list(self._words)
        return dup

    # ------------------------------------------------------------------
    # size
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._nbits

    @property
    def nbits(self) -> int:
        """Logical length in bits."""
        return self._nbits

    def _ensure(self, nbits: int) -> None:
        """Grow the storage (zero-filled) to cover at least *nbits* bits."""
        if nbits > self._nbits:
            self._nbits = nbits
        needed = (self._nbits + _WORD - 1) // _WORD
        if needed > len(self._words):
            self._words.extend([0] * (needed - len(self._words)))

    # ------------------------------------------------------------------
    # single-bit access
    # ------------------------------------------------------------------
    def get_bit(self, pos: int) -> int:
        """Return the bit at *pos* (0 if past the end)."""
        if pos < 0:
            raise IndexError(f"negative bit position {pos}")
        word, off = divmod(pos, _WORD)
        if word >= len(self._words):
            return 0
        return (self._words[word] >> off) & 1

    def set_bit(self, pos: int, value: int = 1) -> None:
        """Set the bit at *pos* to *value* (growing the vector if needed)."""
        if pos < 0:
            raise IndexError(f"negative bit position {pos}")
        self._ensure(pos + 1)
        word, off = divmod(pos, _WORD)
        if value:
            self._words[word] |= 1 << off
        else:
            self._words[word] &= ~(1 << off) & _WORD_MASK

    # ------------------------------------------------------------------
    # field access
    # ------------------------------------------------------------------
    def read(self, pos: int, width: int) -> int:
        """Read *width* bits starting at *pos* as an unsigned integer.

        The bit at *pos* is the least significant bit of the result.
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if pos < 0:
            raise IndexError(f"negative bit position {pos}")
        if width == 0:
            return 0
        word, off = divmod(pos, _WORD)
        nwords = len(self._words)
        out = 0
        shift = 0
        remaining = width
        while remaining > 0 and word < nwords:
            take = min(_WORD - off, remaining)
            chunk = (self._words[word] >> off) & ((1 << take) - 1)
            out |= chunk << shift
            shift += take
            remaining -= take
            word += 1
            off = 0
        return out

    def write(self, pos: int, width: int, value: int) -> None:
        """Write the low *width* bits of *value* starting at *pos*.

        Raises:
            ValueError: if *value* does not fit in *width* bits.
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        if width == 0:
            return
        self._ensure(pos + width)
        word, off = divmod(pos, _WORD)
        remaining = width
        while remaining > 0:
            take = min(_WORD - off, remaining)
            mask = ((1 << take) - 1) << off
            chunk = (value & ((1 << take) - 1)) << off
            self._words[word] = (self._words[word] & ~mask) | chunk
            value >>= take
            remaining -= take
            word += 1
            off = 0

    # ------------------------------------------------------------------
    # range operations (used by the string-array index "push" of §4.4)
    # ------------------------------------------------------------------
    def move_range(self, src: int, length: int, dst: int) -> None:
        """Move *length* bits from *src* to *dst*, handling overlap.

        The source range keeps its old contents except where overwritten by
        the destination; callers that need the vacated bits cleared should
        write over them explicitly.  Ranges of up to a few thousand bits are
        read into a single Python int, which is exact and fast enough for the
        slack pushes the string-array index performs.
        """
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        if length == 0 or src == dst:
            return
        chunk = self.read(src, length)
        self.write(dst, length, chunk)

    def popcount_word(self, word_index: int) -> int:
        """Population count of the 64-bit word at *word_index*."""
        if word_index >= len(self._words):
            return 0
        return self._words[word_index].bit_count()

    def word(self, word_index: int) -> int:
        """Raw 64-bit word at *word_index* (0 past the end)."""
        if word_index >= len(self._words):
            return 0
        return self._words[word_index]

    def count_ones(self) -> int:
        """Total number of set bits."""
        return sum(w.bit_count() for w in self._words)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __getitem__(self, pos: int) -> int:
        return self.get_bit(pos)

    def __setitem__(self, pos: int, value: int) -> None:
        self.set_bit(pos, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        if self._nbits != other._nbits:
            return False
        n = max(len(self._words), len(other._words))
        return all(self.word(i) == other.word(i) for i in range(n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = "".join(str(self.get_bit(i)) for i in range(min(self._nbits, 64)))
        suffix = "..." if self._nbits > 64 else ""
        return f"BitVector({self._nbits} bits: {preview}{suffix})"


class BitWriter:
    """Sequential bit appender over a :class:`BitVector`.

    Codewords are written in *stream order*: the first bit of a codeword
    lands at the lowest position.  Integer patterns passed to
    :meth:`write_bits` carry the first stream bit in their LSB, matching
    what :class:`BitReader` reads back.
    """

    __slots__ = ("vector", "pos")

    def __init__(self, vector: BitVector | None = None, pos: int = 0):
        self.vector = vector if vector is not None else BitVector()
        self.pos = pos

    def write_bits(self, pattern: int, nbits: int) -> None:
        """Append *nbits* bits (LSB of *pattern* first)."""
        self.vector.write(self.pos, nbits, pattern)
        self.pos += nbits


class BitReader:
    """Sequential bit reader over a :class:`BitVector`."""

    __slots__ = ("vector", "pos")

    def __init__(self, vector: BitVector, pos: int = 0):
        self.vector = vector
        self.pos = pos

    def read_bit(self) -> int:
        bit = self.vector.get_bit(self.pos)
        self.pos += 1
        return bit

    def read_bits(self, nbits: int) -> int:
        """Read *nbits* bits; the first bit read becomes the result's LSB."""
        value = self.vector.read(self.pos, nbits)
        self.pos += nbits
        return value
