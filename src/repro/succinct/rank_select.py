"""Rank/select directory over a bit vector (paper §1.1.5, §4.7.1).

The paper reduces the variable-length access problem to *select* and, in the
level-3 flag translation of §4.7.1, uses *rank*: ``r_j = rank(F, j)`` maps a
subgroup index to its position among the subgroups that own an offset vector.
This module provides the classic two-level static directory:

- superblocks of 512 bits store absolute cumulative popcounts;
- 64-bit blocks store popcounts relative to their superblock;
- a query finishes with one word popcount.

``rank1`` is O(1); ``select1`` is O(log N) by binary search over the
directory (adequate for the places the paper needs it — the structures are
static between rebuilds, exactly the regime [Jac89, Mun96] address).
"""

from __future__ import annotations

from repro.succinct.bitvector import BitVector

_BLOCK = 64           # one machine word
_SUPER = 8            # blocks per superblock -> 512 bits


class RankDirectory:
    """Static rank/select support for a :class:`BitVector` snapshot.

    The directory is built once over the current contents; mutating the
    underlying vector afterwards invalidates it (call :meth:`rebuild`).
    """

    def __init__(self, vector: BitVector):
        self._vector = vector
        self._super: list[int] = []
        self._block: list[int] = []
        self._total = 0
        self.rebuild()

    def rebuild(self) -> None:
        """Recompute the directory from the current vector contents."""
        vec = self._vector
        nwords = (len(vec) + _BLOCK - 1) // _BLOCK
        self._super = []
        self._block = []
        running = 0
        for w in range(nwords):
            if w % _SUPER == 0:
                self._super.append(running)
            self._block.append(running - self._super[-1])
            running += vec.popcount_word(w)
        self._total = running

    # ------------------------------------------------------------------
    @property
    def total_ones(self) -> int:
        """Number of set bits in the indexed vector."""
        return self._total

    def size_bits(self) -> int:
        """Model size of the directory in bits (o(N)).

        Superblock entries need ``ceil(log2 N)`` bits; block entries only
        need ``log2 512 = 9`` bits because they are superblock-relative.
        """
        n = max(len(self._vector), 2)
        super_bits = len(self._super) * max(1, (n - 1).bit_length())
        block_bits = len(self._block) * 9
        return super_bits + block_bits

    # ------------------------------------------------------------------
    def rank1(self, pos: int) -> int:
        """Number of set bits in positions ``[0, pos]`` (inclusive).

        ``rank1(-1)`` is 0 by convention; positions past the end count all
        ones.  This matches the paper's footnote 2: "rank(V, j) returns the
        number of 1 bits occurring before and including the jth bit".
        """
        if pos < 0:
            return 0
        if pos >= len(self._vector):
            return self._total
        word, off = divmod(pos, _BLOCK)
        base = self._super[word // _SUPER] + self._block[word]
        partial = self._vector.word(word) & ((1 << (off + 1)) - 1)
        return base + partial.bit_count()

    def rank0(self, pos: int) -> int:
        """Number of zero bits in positions ``[0, pos]`` (inclusive)."""
        if pos < 0:
            return 0
        pos = min(pos, len(self._vector) - 1)
        return (pos + 1) - self.rank1(pos)

    def select1(self, j: int) -> int:
        """Position of the *j*-th set bit (1-indexed).

        Raises:
            ValueError: if fewer than *j* bits are set.
        """
        if j < 1 or j > self._total:
            raise ValueError(f"select1({j}) out of range (total={self._total})")
        # Binary search over superblocks for the last entry < j.
        lo, hi = 0, len(self._super) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._super[mid] < j:
                lo = mid
            else:
                hi = mid - 1
        sb = lo
        # Linear scan over the (at most 8) blocks inside the superblock.
        word = sb * _SUPER
        last_word = min(len(self._block), (sb + 1) * _SUPER)
        while (word + 1 < last_word
               and self._super[sb] + self._block[word + 1] < j):
            word += 1
        # Scan the final word bit by bit.
        remaining = j - self._super[sb] - self._block[word]
        bits = self._vector.word(word)
        off = 0
        while bits:
            if bits & 1:
                remaining -= 1
                if remaining == 0:
                    return word * _BLOCK + off
            bits >>= 1
            off += 1
        raise AssertionError("directory inconsistent with vector")  # pragma: no cover
