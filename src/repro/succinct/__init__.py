"""Succinct storage substrates for the Spectral Bloom Filter (paper §4).

The SBF replaces the Bloom filter's bit vector with a sequence of counters of
*variable* bit width, packed back to back in a base bit array.  This package
implements everything §4 of the paper needs:

- :class:`BitVector` — the raw base array with arbitrary-width field access;
- :class:`RankDirectory` — o(N)-bit rank/select over a bit vector (§1.1.5,
  used for the level-3 flag translation of §4.7.1);
- Elias coding and the "steps" method (§4.5) for self-delimiting counters;
- :class:`StringArrayIndex` — the paper's novel index giving O(1) access to
  the i'th variable-length string (§4.3) with slack-based dynamic updates
  (§4.4) and per-component storage accounting (Figures 13-15);
- :class:`CompactCounterStream` — the cheaper alternative of §4.5 that trades
  O(1) lookups for a sequential scan inside log log N-item subgroups.
"""

from repro.succinct.bitvector import BitVector
from repro.succinct.rank_select import RankDirectory
from repro.succinct.elias import (
    elias_gamma_encode,
    elias_gamma_decode,
    elias_delta_encode,
    elias_delta_decode,
    EliasCodec,
    elias_delta_length,
)
from repro.succinct.steps import StepsCodec
from repro.succinct.string_array import StringArrayIndex
from repro.succinct.compact_stream import CompactCounterStream
from repro.succinct.select_access import SelectAccessIndex
from repro.succinct.serialize import dump_string_array, load_string_array

__all__ = [
    "BitVector",
    "RankDirectory",
    "elias_gamma_encode",
    "elias_gamma_decode",
    "elias_delta_encode",
    "elias_delta_decode",
    "elias_delta_length",
    "EliasCodec",
    "StepsCodec",
    "StringArrayIndex",
    "CompactCounterStream",
    "SelectAccessIndex",
    "dump_string_array",
    "load_string_array",
]
