"""The variable-length access problem via *select* (paper §4.1-4.2).

§4.2: "It can be reduced into a select problem as follows: Create a bit
vector V of the same size N, in which all bits are zero except those that
are positioned at the beginning of substrings in S ... When looking for
the beginning of the i-th substring in S, we simply have to perform
select(V, i)."

:class:`SelectAccessIndex` implements exactly that classical alternative:
the concatenated strings live in one bit vector, a marker vector ``V``
flags string starts, and a :class:`RankDirectory` answers ``select``.  It
solves the *static* problem in O(1)-ish time and o(N) extra bits — but, as
§4.2 stresses, "it fails to meet the demands for updates": any length
change moves all following markers and forces a directory rebuild, which
is why the paper invents the String-Array Index.  The comparison benchmark
and tests quantify both sides of that trade-off.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.succinct.bitvector import BitVector
from repro.succinct.rank_select import RankDirectory


def _width_of(value: int) -> int:
    return max(1, value.bit_length())


class SelectAccessIndex:
    """Static variable-length counter array backed by select (§4.2).

    Counters are packed back to back with *no* slack; a marker vector with
    a rank/select directory locates the *i*-th field.  ``set`` supports
    same-or-narrower writes in place; any width growth rebuilds the whole
    structure (the behaviour §4.2 criticises — O(N) per growing update).
    """

    def __init__(self, counts: Iterable[int]):
        values = [int(v) for v in counts]
        if any(v < 0 for v in values):
            raise ValueError("counter values must be non-negative")
        if not values:
            raise ValueError("SelectAccessIndex needs at least one counter")
        self._m = len(values)
        self.rebuilds = 0
        self._build(values)

    def _build(self, values: list[int]) -> None:
        widths = [_width_of(v) for v in values]
        self._widths = widths
        total = sum(widths)
        self._data = BitVector(total)
        self._markers = BitVector(total)
        pos = 0
        for value, width in zip(values, widths):
            self._markers.set_bit(pos)
            self._data.write(pos, width, value)
            pos += width
        self._directory = RankDirectory(self._markers)

    # ------------------------------------------------------------------
    def position(self, i: int) -> int:
        """Bit offset of counter *i* — one ``select(V, i+1)`` query."""
        if not 0 <= i < self._m:
            raise IndexError(f"index {i} out of range for {self._m} counters")
        return self._directory.select1(i + 1)

    def get(self, i: int) -> int:
        """Value of counter *i*."""
        return self._data.read(self.position(i), self._widths[i])

    def set(self, i: int, value: int) -> None:
        """Set counter *i*; width growth triggers a full O(N) rebuild."""
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        if not 0 <= i < self._m:
            raise IndexError(f"index {i} out of range for {self._m} counters")
        if _width_of(value) <= self._widths[i]:
            self._data.write(self.position(i), self._widths[i], value)
            return
        values = self.to_list()
        values[i] = value
        self.rebuilds += 1
        self._build(values)

    def increment(self, i: int, delta: int = 1) -> int:
        """Add *delta* to counter *i*; return the new value."""
        value = self.get(i) + delta
        if value < 0:
            raise ValueError(f"counter {i} would become negative ({value})")
        self.set(i, value)
        return value

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._m

    def __getitem__(self, i: int) -> int:
        return self.get(i)

    def __iter__(self) -> Iterator[int]:
        for i in range(self._m):
            yield self.get(i)

    def to_list(self) -> list[int]:
        """All counter values as a plain list."""
        return list(self)

    # ------------------------------------------------------------------
    def storage_breakdown(self) -> dict[str, int]:
        """Bits: packed data + marker vector + rank/select directory."""
        return {
            "data": len(self._data),
            "markers": len(self._markers),
            "directory": self._directory.size_bits(),
        }

    def total_bits(self) -> int:
        """Total model size in bits."""
        return sum(self.storage_breakdown().values())
