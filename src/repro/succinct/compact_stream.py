"""The alternative compact counter representation of paper §4.5.

Instead of the full string-array index, §4.5 keeps only the two coarse
offset levels (C1 and C2) and stores the counters with a self-delimiting
prefix-free code (Elias delta or the "steps" method).  A lookup walks to the
right ``log log N``-item subgroup through the offsets and then *sequentially
decodes* until it reaches the requested item — O(log log N) decode steps on
average, in exchange for dropping the level-3 offset vectors and the global
lookup table (total index overhead o(m) bits).

Implementation note: each subgroup (chunk) owns an independent bit buffer,
so an update re-encodes one chunk only and never shifts its neighbours; the
C1/C2 offsets of the conceptual concatenated stream are accounted for in
:meth:`storage_breakdown` exactly as §4.5 prescribes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.succinct.bitvector import BitVector, BitReader, BitWriter
from repro.succinct.elias import EliasCodec
from repro.succinct.steps import StepsCodec


def _make_codec(codec: object) -> object:
    """Resolve a codec argument: instance, or the names 'elias'/'steps'."""
    if codec == "elias":
        return EliasCodec()
    if codec == "steps":
        return StepsCodec((0, 0))
    if hasattr(codec, "encode") and hasattr(codec, "decode"):
        return codec
    raise ValueError(f"unknown codec {codec!r}; expected 'elias', 'steps' "
                     f"or an object with encode/decode")


class _Chunk:
    """One subgroup: a small bit buffer of consecutively coded counters."""

    __slots__ = ("bits", "nbits", "count")

    def __init__(self) -> None:
        self.bits = BitVector()
        self.nbits = 0
        self.count = 0


class CompactCounterStream:
    """Counter array coded with a prefix-free codec (paper §4.5).

    Args:
        counts: initial counter values.
        codec: ``"elias"``, ``"steps"`` or a codec instance with
            ``encode(value) -> (pattern, nbits)``, ``decode(reader)`` and
            ``length(value)``.
        chunk_items: items per subgroup (default: ~log log N as in §4.5).
    """

    def __init__(self, counts: Iterable[int], codec: object = "elias",
                 *, chunk_items: int | None = None):
        values = [int(v) for v in counts]
        if any(v < 0 for v in values):
            raise ValueError("counter values must be non-negative")
        if not values:
            raise ValueError("CompactCounterStream needs at least one counter")
        self._codec = _make_codec(codec)
        self._m = len(values)
        if chunk_items is None:
            approx_bits = max(16, 2 * self._m)
            log_n = max(4, approx_bits.bit_length())
            chunk_items = max(2, log_n.bit_length())
        self._chunk_items = int(chunk_items)
        self._group_chunks = 8    # chunks per level-1 group (accounting only)
        self._chunks: list[_Chunk] = []
        for start in range(0, self._m, self._chunk_items):
            chunk = _Chunk()
            self._encode_chunk(chunk, values[start:start + self._chunk_items])
            self._chunks.append(chunk)

    # ------------------------------------------------------------------
    def _encode_chunk(self, chunk: _Chunk, values: list[int]) -> None:
        bits = BitVector()
        writer = BitWriter(bits)
        for v in values:
            pattern, nbits = self._codec.encode(v)
            writer.write_bits(pattern, nbits)
        chunk.bits = bits
        chunk.nbits = writer.pos
        chunk.count = len(values)

    def _decode_chunk(self, chunk: _Chunk) -> list[int]:
        reader = BitReader(chunk.bits)
        return [self._codec.decode(reader) for _ in range(chunk.count)]

    # ------------------------------------------------------------------
    def get(self, i: int) -> int:
        """Value of counter *i* (sequential decode inside its subgroup)."""
        if not 0 <= i < self._m:
            raise IndexError(f"index {i} out of range for {self._m} counters")
        chunk = self._chunks[i // self._chunk_items]
        reader = BitReader(chunk.bits)
        j = i % self._chunk_items
        for _ in range(j):
            self._codec.decode(reader)
        return self._codec.decode(reader)

    def set(self, i: int, value: int) -> None:
        """Set counter *i* to *value*, re-encoding its subgroup."""
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        if not 0 <= i < self._m:
            raise IndexError(f"index {i} out of range for {self._m} counters")
        chunk = self._chunks[i // self._chunk_items]
        values = self._decode_chunk(chunk)
        values[i % self._chunk_items] = value
        self._encode_chunk(chunk, values)

    def increment(self, i: int, delta: int = 1) -> int:
        """Add *delta* to counter *i*; return the new value."""
        value = self.get(i) + delta
        if value < 0:
            raise ValueError(f"counter {i} would become negative ({value})")
        self.set(i, value)
        return value

    def decrement(self, i: int, delta: int = 1) -> int:
        """Subtract *delta* from counter *i*; return the new value."""
        return self.increment(i, -delta)

    def increment_clamped(self, i: int, delta: int) -> int:
        """Add *delta* to counter *i*, flooring at zero; return new value.

        Single-touch: the subgroup is decoded once and re-encoded once,
        where a ``get`` + ``set`` pair would decode it twice.
        """
        if not 0 <= i < self._m:
            raise IndexError(f"index {i} out of range for {self._m} counters")
        chunk = self._chunks[i // self._chunk_items]
        values = self._decode_chunk(chunk)
        j = i % self._chunk_items
        value = values[j] + delta
        if value < 0:
            value = 0
        values[j] = value
        self._encode_chunk(chunk, values)
        return value

    # ------------------------------------------------------------------
    # bulk operations — one decode / re-encode per touched subgroup
    # ------------------------------------------------------------------
    def _chunk_runs(self, sorted_idx: np.ndarray):
        """Yield ``(chunk_id, a, b)`` runs of a sorted index array."""
        cid = sorted_idx // self._chunk_items
        starts = np.flatnonzero(np.r_[True, cid[1:] != cid[:-1]])
        ends = np.r_[starts[1:], np.int64(cid.size)]
        for a, b in zip(starts.tolist(), ends.tolist()):
            yield int(cid[a]), a, b

    def _check_bounds(self, idx: np.ndarray) -> None:
        low, high = int(idx.min()), int(idx.max())
        if low < 0 or high >= self._m:
            bad = low if low < 0 else high
            raise IndexError(
                f"index {bad} out of range for {self._m} counters")

    def get_many(self, indices) -> np.ndarray:
        """Values at *indices* (repeats allowed), decoding each touched
        subgroup exactly once instead of once per lookup."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=np.int64)
        self._check_bounds(idx)
        order = np.argsort(idx, kind="stable")
        si = idx[order]
        out = np.empty(idx.size, dtype=np.int64)
        for cid, a, b in self._chunk_runs(si):
            values = self._decode_chunk(self._chunks[cid])
            base = cid * self._chunk_items
            out[order[a:b]] = [values[i - base] for i in si[a:b].tolist()]
        return out

    def add_many(self, indices, deltas) -> None:
        """Accumulate *deltas* into *indices*, re-encoding each touched
        subgroup exactly once.

        Matches the sequential contract of the backend bulk hooks: every
        new value is computed and validated before *any* subgroup is
        re-encoded, so a batch that would drive a counter negative
        raises ``ValueError`` without mutating anything (for the
        same-signed batches the bulk kernels submit, the sequential loop
        fails exactly when a final value is negative).
        """
        idx = np.asarray(indices, dtype=np.int64)
        dts = np.asarray(deltas, dtype=np.int64)
        if idx.shape != dts.shape:
            raise ValueError(
                f"add_many needs matching shapes, got {idx.shape} indices "
                f"and {dts.shape} deltas")
        if idx.size == 0:
            return
        self._check_bounds(idx)
        order = np.argsort(idx, kind="stable")
        si = idx[order]
        sd = dts[order]
        staged: list[tuple[_Chunk, list[int]]] = []
        for cid, a, b in self._chunk_runs(si):
            chunk = self._chunks[cid]
            values = self._decode_chunk(chunk)
            base = cid * self._chunk_items
            for i, d in zip(si[a:b].tolist(), sd[a:b].tolist()):
                j = i - base
                value = values[j] + d
                if value < 0:
                    raise ValueError(
                        f"counter {i} would become negative ({value})")
                values[j] = value
            staged.append((chunk, values))
        for chunk, values in staged:
            self._encode_chunk(chunk, values)

    def set_many(self, indices, values) -> None:
        """Set counters pairwise (last write wins on repeats), re-encoding
        each touched subgroup exactly once."""
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values, dtype=np.int64)
        if idx.shape != vals.shape:
            raise ValueError(
                f"set_many needs matching shapes, got {idx.shape} indices "
                f"and {vals.shape} values")
        if vals.size == 0:
            return
        if int(vals.min()) < 0:
            raise ValueError(
                f"counter values must be >= 0, got {int(vals.min())}")
        self._check_bounds(idx)
        # Stable sort keeps submission order inside each index group, so
        # writing the group in order preserves last-write-wins.
        order = np.argsort(idx, kind="stable")
        si = idx[order]
        sv = vals[order]
        for cid, a, b in self._chunk_runs(si):
            chunk = self._chunks[cid]
            decoded = self._decode_chunk(chunk)
            base = cid * self._chunk_items
            for i, v in zip(si[a:b].tolist(), sv[a:b].tolist()):
                decoded[i - base] = v
            self._encode_chunk(chunk, decoded)

    def __getitem__(self, i: int) -> int:
        return self.get(i)

    def __setitem__(self, i: int, value: int) -> None:
        self.set(i, value)

    def __len__(self) -> int:
        return self._m

    def __iter__(self) -> Iterator[int]:
        for chunk in self._chunks:
            yield from self._decode_chunk(chunk)

    def to_list(self) -> list[int]:
        """All counter values as a plain list."""
        return list(self)

    # ------------------------------------------------------------------
    def storage_breakdown(self) -> dict[str, int]:
        """Model size in bits: coded stream + C1/C2 offsets (§4.5)."""
        stream_bits = sum(c.nbits for c in self._chunks)
        total = max(2, stream_bits)
        offset_bits = (total - 1).bit_length()
        n_chunks = len(self._chunks)
        n_groups = (n_chunks + self._group_chunks - 1) // self._group_chunks
        return {
            "stream": stream_bits,
            "l1_coarse": n_groups * offset_bits,
            "l2_offsets": n_chunks * offset_bits,
        }

    def total_bits(self) -> int:
        """Total model size in bits."""
        return sum(self.storage_breakdown().values())
