"""The "steps" encoding for small counters (paper §4.5).

Elias coding pays a constant overhead that dominates for tiny values: the
paper notes that encoding the counter value 1 costs 4 bits, while in many
data sets most counters are 0 or 1.  The steps method fixes this with a
Huffman-like prefix: the paper's example uses ``0`` for counter 0, ``10``
for counter 1, and ``11`` followed by the Elias code for anything larger.

We implement the natural generalisation the paper alludes to ("It is further
reduced if we encode longer sequences"): a :class:`StepsCodec` is configured
with a tuple of payload widths ``(w_1, ..., w_t)``.  Step ``j`` is selected
by the prefix ``1^(j-1) 0`` and carries a ``w_j``-bit payload; values beyond
the last step are escaped with ``1^t`` followed by the Elias delta code of
the residual.  The paper's example is ``StepsCodec(())`` degenerate form —
in this generalisation it corresponds to widths ``(0, 0)``:

- widths ``(0, 0)``: ``0`` -> 0, ``10`` -> 1, ``11 + elias(v - 2 + 1)``.
- Figure 10's "1,2" configuration is ``StepsCodec((1, 2))``: ``0`` + 1 bit
  covers {0, 1}, ``10`` + 2 bits covers {2..5}, escape above.
- Figure 10's "2,3" configuration is ``StepsCodec((2, 3))``.
"""

from __future__ import annotations

from repro.succinct.bitvector import BitReader
from repro.succinct.elias import (
    elias_delta_decode,
    elias_delta_encode,
    elias_delta_length,
)


class StepsCodec:
    """Prefix-stepped counter codec with an Elias escape hatch.

    Args:
        widths: payload width (in bits) of each step.  Step *j* covers the
            next ``2**widths[j]`` counter values and costs
            ``j + widths[j]`` bits (``j - 1`` ones, one zero, the payload) —
            except the last prefix, which needs no terminating zero ambiguity
            because the escape uses all-ones.
    """

    def __init__(self, widths: tuple[int, ...] = (0, 0)):
        widths = tuple(int(w) for w in widths)
        if any(w < 0 for w in widths):
            raise ValueError(f"step widths must be >= 0, got {widths}")
        if not widths:
            raise ValueError("at least one step is required")
        self.widths = widths
        # First counter value covered by each step, and by the escape.
        self._bases = []
        base = 0
        for w in widths:
            self._bases.append(base)
            base += 1 << w
        self._escape_base = base

    @property
    def name(self) -> str:
        return "steps(" + ",".join(str(w) for w in self.widths) + ")"

    def encode(self, value: int) -> tuple[int, int]:
        """Stream-order ``(pattern, nbits)`` codeword for counter *value*."""
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        for j, (width, base) in enumerate(zip(self.widths, self._bases)):
            if value < base + (1 << width):
                # Prefix: j ones then a zero, emitted first.
                prefix = (1 << j) - 1          # j ones, stream order
                nbits = j + 1 + width
                payload = value - base
                pattern = prefix | (payload << (j + 1))
                return pattern, nbits
        # Escape: t ones then the Elias delta code of the residual + 1.
        t = len(self.widths)
        prefix = (1 << t) - 1
        tail, tail_bits = elias_delta_encode(value - self._escape_base + 1)
        return prefix | (tail << t), t + tail_bits

    def decode(self, reader: BitReader) -> int:
        """Read one codeword and return the counter value."""
        t = len(self.widths)
        ones = 0
        while ones < t and reader.read_bit() == 1:
            ones += 1
        if ones < t:
            # We consumed the terminating zero of step `ones`.
            width = self.widths[ones]
            payload = reader.read_bits(width)
            return self._bases[ones] + payload
        return self._escape_base + elias_delta_decode(reader) - 1

    def length(self, value: int) -> int:
        """Codeword length in bits for counter *value*."""
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        for j, (width, base) in enumerate(zip(self.widths, self._bases)):
            if value < base + (1 << width):
                return j + 1 + width
        t = len(self.widths)
        return t + elias_delta_length(value - self._escape_base + 1)
