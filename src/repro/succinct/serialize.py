"""Contiguous-memory serialisation of the String-Array Index (§4.7.1).

"One of the popular uses of Bloom Filters is in distributed systems, where
the filter is often sent from one node to another as a message. ... The
goal is to create the data structure as one continuous block and when it
is needed to be sent, simply transmit the contents of the memory block."

This module implements that wire format for :class:`StringArrayIndex`:
the base bit array is shipped verbatim together with the Elias-coded item
widths (the L(S'') information) and the layout parameters; the offset
vectors and the lookup table are *not* transmitted — exactly as §4.7.1
notes for the lookup table, they are "dependent only on the parameters"
and are regenerated at the receiving node.

Layout (all integers little-endian):

    magic      4 bytes   b"SAI1"
    m          8 bytes   number of counters
    g1         4 bytes   items per level-1 group
    widths     Elias-delta stream, one codeword per counter
    (padding to a byte boundary)
    values     the counter fields, packed at their exact widths

The decoded structure is rebuilt with fresh slack, which also makes the
format deterministic regardless of the sender's update history.
"""

from __future__ import annotations

import struct

from repro.succinct.bitvector import BitVector, BitReader, BitWriter
from repro.succinct.elias import elias_delta_decode, elias_delta_encode
from repro.succinct.string_array import StringArrayIndex

_MAGIC = b"SAI1"


def dump_string_array(index: StringArrayIndex) -> bytes:
    """Serialise *index* into one contiguous byte string."""
    values = index.to_list()
    widths = [max(1, v.bit_length()) for v in values]
    bits = BitVector()
    writer = BitWriter(bits)
    for w in widths:
        pattern, nbits = elias_delta_encode(w)
        writer.write_bits(pattern, nbits)
    # Byte-align the value section so the header stays simple.
    if writer.pos % 8:
        writer.write_bits(0, 8 - writer.pos % 8)
    width_section_bits = writer.pos
    for v, w in zip(values, widths):
        writer.write_bits(v, w)
    total_bits = writer.pos
    payload = bytearray((total_bits + 7) // 8)
    for byte_index in range(len(payload)):
        payload[byte_index] = bits.read(8 * byte_index, 8)
    header = _MAGIC + struct.pack("<QII", len(values),
                                  index._g1, width_section_bits)
    return bytes(header) + bytes(payload)


def load_string_array(blob: bytes, **sai_options) -> StringArrayIndex:
    """Rebuild a :class:`StringArrayIndex` from :func:`dump_string_array`.

    Index structures (offset vectors, lookup table) are regenerated
    locally; *sai_options* are forwarded to the constructor (e.g. custom
    slack settings for the receiving node).

    Raises:
        ValueError: on a malformed or truncated blob.
    """
    header_size = len(_MAGIC) + struct.calcsize("<QII")
    if len(blob) < header_size or blob[:4] != _MAGIC:
        raise ValueError("not a String-Array Index blob")
    m, g1, width_section_bits = struct.unpack(
        "<QII", blob[len(_MAGIC):header_size])
    payload = blob[header_size:]
    bits = BitVector(len(payload) * 8)
    for i, byte in enumerate(payload):
        bits.write(8 * i, 8, byte)
    reader = BitReader(bits)
    widths = []
    for _ in range(m):
        widths.append(elias_delta_decode(reader))
    reader.pos = width_section_bits
    values = []
    for w in widths:
        if reader.pos + w > len(payload) * 8:
            raise ValueError("truncated String-Array Index blob")
        values.append(reader.read_bits(w))
    sai_options.setdefault("group_items", g1)
    return StringArrayIndex(values, **sai_options)
