"""Elias universal codes (paper §4.5).

The paper's "Elias encoding" is the Elias *delta* code: for an integer
``n >= 1`` with binary representation ``B(n)`` of length ``L(n)``, one first
emits the gamma code ``B1(L(n))`` of the length, then ``B(n)`` with its
leading 1 removed.  Its total length is::

    L2(n) = floor(log2 n) + 2*floor(log2(floor(log2 n) + 1)) + 1

(the formula quoted verbatim in §4.5).  Since the code cannot represent 0 and
SBF counters can be 0, the paper encodes ``n + 1`` — :class:`EliasCodec`
applies that shift so counter values round-trip unchanged.

Bit conventions: codewords are produced in *stream order* as
``(pattern, nbits)`` pairs whose first stream bit is the LSB of ``pattern``;
they interoperate with :class:`repro.succinct.bitvector.BitWriter` /
:class:`~repro.succinct.bitvector.BitReader`.
"""

from __future__ import annotations

from repro.succinct.bitvector import BitReader


def _reverse_bits(value: int, nbits: int) -> int:
    """Reverse the low *nbits* bits of *value* (MSB-first <-> stream order)."""
    out = 0
    for _ in range(nbits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def elias_gamma_encode(n: int) -> tuple[int, int]:
    """Gamma code of ``n >= 1`` as a stream-order ``(pattern, nbits)`` pair.

    The code is ``L(n) - 1`` zeros followed by ``B(n)`` MSB-first; total
    length ``2*L(n) - 1`` bits.
    """
    if n < 1:
        raise ValueError(f"gamma code requires n >= 1, got {n}")
    length = n.bit_length()
    # Stream order: (length-1) zeros, then B(n) from MSB to LSB.
    payload = _reverse_bits(n, length)
    pattern = payload << (length - 1)
    return pattern, 2 * length - 1


def elias_gamma_decode(reader: BitReader) -> int:
    """Decode one gamma codeword from *reader* and return its value."""
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 64:
            raise ValueError("malformed gamma code (65+ leading zeros)")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value


def elias_delta_encode(n: int) -> tuple[int, int]:
    """Delta code of ``n >= 1`` as a stream-order ``(pattern, nbits)`` pair."""
    if n < 1:
        raise ValueError(f"delta code requires n >= 1, got {n}")
    length = n.bit_length()
    head, head_bits = elias_gamma_encode(length)
    # B(n) with its leading 1 removed, MSB-first in stream order.
    tail_bits = length - 1
    tail = _reverse_bits(n & ((1 << tail_bits) - 1), tail_bits)
    return head | (tail << head_bits), head_bits + tail_bits


def elias_delta_decode(reader: BitReader) -> int:
    """Decode one delta codeword from *reader* and return its value."""
    length = elias_gamma_decode(reader)
    value = 1
    for _ in range(length - 1):
        value = (value << 1) | reader.read_bit()
    return value


def elias_delta_length(n: int) -> int:
    """Length in bits of the delta code of ``n >= 1`` (the paper's L2)."""
    if n < 1:
        raise ValueError(f"delta code requires n >= 1, got {n}")
    log_n = n.bit_length() - 1
    return log_n + 2 * (log_n + 1).bit_length() - 2 + 1


class EliasCodec:
    """Counter codec: value ``v >= 0`` is stored as the delta code of ``v+1``.

    This is exactly the convention of §4.5's footnote: "when encoding n, we
    actually encode n + 1".
    """

    name = "elias"

    def encode(self, value: int) -> tuple[int, int]:
        """Stream-order ``(pattern, nbits)`` codeword for counter *value*."""
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        return elias_delta_encode(value + 1)

    def decode(self, reader: BitReader) -> int:
        """Read one codeword and return the counter value."""
        return elias_delta_decode(reader) - 1

    def length(self, value: int) -> int:
        """Codeword length in bits for counter *value* (without encoding)."""
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        return elias_delta_length(value + 1)
