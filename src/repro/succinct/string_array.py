"""The String-Array Index (paper §4.3, §4.4, §4.6, §4.7).

The SBF packs ``m`` counters of *variable* bit width back to back in a base
bit array; the string-array index is the auxiliary structure that returns
the bit position of the *i*-th counter in O(1) time while occupying only
``o(N) + O(m)`` bits.  It is built from the paper's three building blocks:

1. **Coarse offset vectors** — the level-1 array ``C1`` stores the absolute
   offset of every group of ``~log N`` items; level-2 arrays store the
   offsets of ``~log log N``-item chunks inside each group.
2. **Offset vectors** — groups whose bit size exceeds ``(log N)^3`` get a
   complete per-item offset vector (level 2); chunks whose bit size exceeds
   ``(log log N)^3`` get a per-item offset vector (level 3).
3. **A global lookup table** — small chunks are resolved through a table
   keyed by the encoded sequence of item lengths ``L(S'')``, which maps
   ``(lengths, j)`` to the offset of the *j*-th item.  We realise the table
   lazily (entries materialise on first use), so its accounted size reflects
   the length-combinations that actually occur, exactly the quantity the
   paper's Figure 14 plots.

Dynamic updates (§4.4) are supported through slack bits: each chunk is
allocated a little more capacity than it uses, and each group keeps a slack
tail.  When a counter outgrows its field, the items after it *push* right
into the chunk slack; when a chunk overflows, it grows into the group slack
(shifting the following chunks); when a group overflows, the entire
structure is refreshed — the paper's periodic rebuild, amortised O(1) per
update.  Deletions never shrink fields in place (§4.4: "Delete operations
only affect individual counters, and do not affect their positions"); the
width reclaimed by deletions is recovered at the next refresh.

Deviation from the paper, documented for reviewers: the paper intersperses
one slack bit every ``1/eps`` items; we place the equivalent slack at chunk
and group tails instead.  This keeps items inside a chunk contiguous (so the
lookup table stays a pure function of the chunk's length sequence) while
preserving the amortised O(1) push argument — a push still travels an O(1)
expected number of items to reach free space.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.succinct.bitvector import BitVector
from repro.succinct.elias import elias_delta_length


def _width_of(value: int) -> int:
    """Bit width used to store *value* (zero occupies one bit)."""
    return max(1, value.bit_length())


class _Group:
    """Bookkeeping for one level-1 group of items."""

    __slots__ = ("start", "capacity", "chunk_size", "complete",
                 "chunk_offsets", "chunk_caps", "chunk_used", "item_offsets")

    def __init__(self) -> None:
        self.start = 0            # absolute bit offset of the group
        self.capacity = 0         # bits allocated to the group (incl. slack)
        self.chunk_size = 1       # items per chunk in this group
        self.complete = False     # True -> complete level-2 offset vector
        self.chunk_offsets: list[int] = []   # chunk starts, group-relative
        self.chunk_caps: list[int] = []      # bits allocated per chunk
        self.chunk_used: list[int] = []      # bits used per chunk
        # Per-chunk item offset vectors (chunk-relative); None means the
        # chunk is resolved through the global lookup table.
        self.item_offsets: list[list[int] | None] = []


class _NeedRebuild(Exception):
    """Internal signal: the in-place push ran out of slack."""


class StringArrayIndex:
    """O(1)-access array of ``m`` variable-length counters (paper §4).

    Args:
        counts: initial counter values (any iterable of non-negative ints).
        chunk_slack: slack bits appended to every chunk at (re)build time.
        group_slack: minimum slack bits appended to every group; the actual
            group slack also scales with the group's used size so heavy
            groups get proportionally more headroom.
        group_items / chunk_items: override the ``log N`` / ``log log N``
            derived group and chunk sizes (mostly for tests).
        reduction_c: the §4.6 storage-reduction exponent ``c >= 0``.
            Groups grow to ``(log N)^(1+c)`` items and chunks to
            ``(log log N)^(1+c)``, cutting the index overhead towards
            ``o(N/(log log N)^c)`` bits at the cost of longer shifts per
            push (Theorem 9's trade-off).

    The structure exposes list-like access (:meth:`get`, :meth:`set`,
    ``len``), counter arithmetic (:meth:`increment`, :meth:`decrement`) and
    per-component storage accounting (:meth:`storage_breakdown`).
    """

    def __init__(self, counts: Iterable[int], *, chunk_slack: int = 4,
                 group_slack: int = 16, group_items: int | None = None,
                 chunk_items: int | None = None,
                 reduction_c: float = 0.0):
        values = [int(v) for v in counts]
        if any(v < 0 for v in values):
            raise ValueError("counter values must be non-negative")
        if not values:
            raise ValueError("StringArrayIndex needs at least one counter")
        if reduction_c < 0:
            raise ValueError(
                f"reduction_c must be >= 0, got {reduction_c}")
        self._m = len(values)
        self._chunk_slack = int(chunk_slack)
        self._group_slack = int(group_slack)
        self._group_items_override = group_items
        self._chunk_items_override = chunk_items
        self._reduction_c = float(reduction_c)
        # Lazily-materialised global lookup table:
        #   lengths tuple -> tuple of prefix offsets (chunk-relative).
        self._table: dict[tuple[int, ...], tuple[int, ...]] = {}
        # Operation statistics (exposed for the benchmarks).
        self.pushes = 0
        self.chunk_grows = 0
        self.rebuilds = 0
        self._deleted_bits = 0
        self._build(values)

    # ------------------------------------------------------------------
    # construction / rebuild
    # ------------------------------------------------------------------
    def _derive_parameters(self, total_width: int) -> tuple[int, int, int, int]:
        """Derive (g1, g2, complete_threshold, table_threshold) from N."""
        n_bits = max(16, total_width)
        log_n = max(4, n_bits.bit_length())           # ~ log2 N
        loglog_n = max(2, log_n.bit_length())          # ~ log2 log2 N
        # §4.6: exponent 1+c on the group/chunk sizes, and the matching
        # thresholds (complete vectors above ~(log N)^(2+2c) bits, lookup
        # table below T0'' = (3+6c)(log log N)^(2+2c)) trade lookup-time
        # constants for an index smaller by a (log log N)^c-ish factor.
        c = self._reduction_c
        scale = 1.0 + c
        g1 = self._group_items_override or max(2, round(log_n ** scale))
        g2 = self._chunk_items_override or max(2, round(loglog_n ** scale))
        g2 = min(g2, g1)
        complete_threshold = round(log_n ** (3 * scale))
        table_threshold = round((3 + 6 * c) / 3
                                * loglog_n ** (2 + 2 * c) * loglog_n)
        return g1, g2, complete_threshold, table_threshold

    def _build(self, values: list[int]) -> None:
        # The lookup table is a cache over the *current* length sequences;
        # a rebuild invalidates old entries, so drop them from the
        # accounting rather than letting dead keys accumulate.
        self._table.clear()
        widths = [_width_of(v) for v in values]
        total_width = sum(widths)
        g1, g2, complete_thr, table_thr = self._derive_parameters(total_width)
        self._g1 = g1
        self._table_threshold = table_thr
        self._widths = widths
        self._groups: list[_Group] = []
        base = BitVector()
        pos = 0
        for g_start in range(0, self._m, g1):
            g_items = list(range(g_start, min(g_start + g1, self._m)))
            group_bits = sum(widths[i] for i in g_items)
            group = _Group()
            group.start = pos
            group.complete = group_bits > complete_thr
            group.chunk_size = len(g_items) if group.complete else g2
            rel = 0
            for c_start in range(0, len(g_items), group.chunk_size):
                c_items = g_items[c_start:c_start + group.chunk_size]
                used = sum(widths[i] for i in c_items)
                cap = used + self._chunk_slack
                group.chunk_offsets.append(rel)
                group.chunk_caps.append(cap)
                group.chunk_used.append(used)
                if group.complete or used > table_thr:
                    offsets = []
                    acc = 0
                    for i in c_items:
                        offsets.append(acc)
                        acc += widths[i]
                    group.item_offsets.append(offsets)
                else:
                    group.item_offsets.append(None)
                # Write the counter fields into the base array.
                cursor = pos + rel
                for i in c_items:
                    base.write(cursor, widths[i], values[i])
                    cursor += widths[i]
                rel += cap
            slack = max(self._group_slack, group_bits // 16)
            group.capacity = rel + slack
            pos += group.capacity
            self._groups.append(group)
        # Materialise the full allocation so nbits reflects the slack too.
        if pos > 0:
            base.write(pos - 1, 1, base.get_bit(pos - 1))
        self._base = base
        self._total_capacity = pos
        self._deleted_bits = 0

    def rebuild(self) -> None:
        """Refresh the layout: re-pack all counters with fresh slack.

        This is the paper's periodic refresh (§4.4): after it, every chunk
        has its full slack again and widths match the current values.
        """
        values = list(self)
        self.rebuilds += 1
        self._build(values)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def _locate(self, i: int) -> tuple[_Group, int, int, int]:
        """Return (group, chunk index, index in chunk, absolute bit pos)."""
        if not 0 <= i < self._m:
            raise IndexError(f"index {i} out of range for {self._m} counters")
        g, within = divmod(i, self._g1)
        group = self._groups[g]
        c, j = divmod(within, group.chunk_size)
        chunk_start = group.start + group.chunk_offsets[c]
        offsets = group.item_offsets[c]
        if offsets is not None:
            rel = offsets[j]
        else:
            key = self._chunk_lengths(g, c)
            rel = self._table_offsets(key)[j]
        return group, c, j, chunk_start + rel

    def _chunk_lengths(self, g: int, c: int) -> tuple[int, ...]:
        """The length sequence L(S'') of chunk *c* in group *g*."""
        group = self._groups[g]
        first = g * self._g1 + c * group.chunk_size
        last = min(first + group.chunk_size, self._m,
                   (g + 1) * self._g1)
        return tuple(self._widths[first:last])

    #: chunks longer than this many items bypass the memoised table: their
    #: length sequences are almost always unique, so caching them would
    #: balloon the realised table.  They store L(S'') inline and pay a
    #: short scan instead — the §4.5 regime, which is exactly what the
    #: larger chunks of a §4.6-reduced index are meant to do.
    _TABLE_KEY_MAX_ITEMS = 8

    def _table_offsets(self, key: tuple[int, ...]) -> tuple[int, ...]:
        """Lookup-table access: prefix offsets for a length sequence."""
        cached = self._table.get(key)
        if cached is None:
            acc = 0
            offsets = []
            for width in key:
                offsets.append(acc)
                acc += width
            cached = tuple(offsets)
            if len(key) <= self._TABLE_KEY_MAX_ITEMS:
                self._table[key] = cached
        return cached

    def position(self, i: int) -> int:
        """Absolute bit offset of counter *i* in the base array."""
        return self._locate(i)[3]

    def width(self, i: int) -> int:
        """Current field width (bits) of counter *i*."""
        if not 0 <= i < self._m:
            raise IndexError(f"index {i} out of range for {self._m} counters")
        return self._widths[i]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, i: int) -> int:
        """Return the value of counter *i*."""
        _group, _c, _j, pos = self._locate(i)
        return self._base.read(pos, self._widths[i])

    def __getitem__(self, i: int) -> int:
        return self.get(i)

    def __len__(self) -> int:
        return self._m

    def __iter__(self) -> Iterator[int]:
        for i in range(self._m):
            yield self.get(i)

    def to_list(self) -> list[int]:
        """All counter values as a plain list."""
        return list(self)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def set(self, i: int, value: int) -> None:
        """Set counter *i* to *value* (>= 0), expanding its field if needed."""
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        old_width = self._widths[i]
        new_width = _width_of(value)
        if new_width <= old_width:
            # In-place write; deletions keep the field width (§4.4).
            _g, _c, _j, pos = self._locate(i)
            self._base.write(pos, old_width, value)
            if new_width < old_width:
                self._deleted_bits += old_width - new_width
                if self._deleted_bits * 4 > max(64, self._total_capacity):
                    self.rebuild()
            return
        try:
            self._expand(i, new_width)
        except _NeedRebuild:
            # Read everything out with the *old* layout, then refresh.
            values = list(self)
            values[i] = value
            self.rebuilds += 1
            self._build(values)
            return
        _g, _c, _j, pos = self._locate(i)
        self._base.write(pos, new_width, value)

    def __setitem__(self, i: int, value: int) -> None:
        self.set(i, value)

    def increment(self, i: int, delta: int = 1) -> int:
        """Add *delta* (may be negative) to counter *i*; return new value.

        Raises:
            ValueError: if the result would be negative.
        """
        value = self.get(i) + delta
        if value < 0:
            raise ValueError(
                f"counter {i} would become negative ({value})"
            )
        self.set(i, value)
        return value

    def decrement(self, i: int, delta: int = 1) -> int:
        """Subtract *delta* from counter *i*; return the new value."""
        return self.increment(i, -delta)

    def increment_clamped(self, i: int, delta: int) -> int:
        """Add *delta* to counter *i*, flooring at zero; return new value.

        Single-touch: one ``_locate`` serves both the read and the write,
        instead of the separate locates a ``get`` + ``set`` pair performs.
        Shrinks stay in place (deletions keep the field width, §4.4); the
        rare growth case falls back to :meth:`set`'s expansion machinery.
        """
        _group, _c, _j, pos = self._locate(i)
        old_width = self._widths[i]
        value = self._base.read(pos, old_width) + delta
        if value < 0:
            value = 0
        new_width = _width_of(value)
        if new_width <= old_width:
            self._base.write(pos, old_width, value)
            if new_width < old_width:
                self._deleted_bits += old_width - new_width
                if self._deleted_bits * 4 > max(64, self._total_capacity):
                    self.rebuild()
            return value
        self.set(i, value)
        return value

    # ------------------------------------------------------------------
    # expansion machinery (§4.4)
    # ------------------------------------------------------------------
    def _expand(self, i: int, new_width: int) -> None:
        """Grow counter *i*'s field to *new_width* bits, pushing as needed."""
        group, c, j, pos = self._locate(i)
        old_width = self._widths[i]
        delta = new_width - old_width
        free = group.chunk_caps[c] - group.chunk_used[c]
        if free < delta:
            self._grow_chunk(group, c, delta - free)
            # Chunk start may have moved only for *later* chunks; item pos
            # inside chunk c is unchanged, but recompute to stay safe.
            pos = self._locate(i)[3]
        # Shift the items after i inside the chunk to the right by delta.
        g_index = i // self._g1
        first = g_index * self._g1 + c * group.chunk_size
        last = min(first + group.chunk_size, self._m,
                   (g_index + 1) * self._g1)
        tail_bits = sum(self._widths[x] for x in range(i + 1, last))
        if tail_bits:
            self._base.move_range(pos + old_width, tail_bits,
                                  pos + new_width)
            self.pushes += 1
        # Preserve the old value bits in the widened field (caller rewrites).
        old_value = self._base.read(pos, old_width)
        self._base.write(pos, new_width, old_value)
        self._widths[i] = new_width
        group.chunk_used[c] += delta
        offsets = group.item_offsets[c]
        if offsets is not None:
            for x in range(j + 1, len(offsets)):
                offsets[x] += delta
        elif group.chunk_used[c] > self._table_threshold:
            # The chunk outgrew the lookup table: give it a level-3 vector.
            key = self._chunk_lengths(g_index, c)
            group.item_offsets[c] = list(self._table_offsets(key))

    def _grow_chunk(self, group: _Group, c: int, need: int) -> None:
        """Grow chunk *c* of *group* by at least *need* bits of capacity."""
        grow = max(need, self._chunk_slack)
        last = len(group.chunk_caps) - 1
        used_end = group.chunk_offsets[last] + group.chunk_caps[last]
        group_free = group.capacity - used_end
        if group_free < grow:
            raise _NeedRebuild()
        self.chunk_grows += 1
        if c < last:
            block_src = group.start + group.chunk_offsets[c + 1]
            block_len = used_end - group.chunk_offsets[c + 1]
            self._base.move_range(block_src, block_len, block_src + grow)
            for x in range(c + 1, last + 1):
                group.chunk_offsets[x] += grow
        group.chunk_caps[c] += grow

    # ------------------------------------------------------------------
    # storage accounting (Figures 13-15)
    # ------------------------------------------------------------------
    def storage_breakdown(self) -> dict[str, int]:
        """Model size in bits of every component of the structure.

        Keys match the stacked components of the paper's Figure 14:

        - ``base_array``: the packed counters including all slack bits;
        - ``l1_coarse``: the level-1 coarse offset array ``C1``;
        - ``l2_offsets``: level-2 structures (chunk coarse offsets, plus
          complete offset vectors for oversized groups);
        - ``l3_offsets``: per-item offset vectors of oversized chunks;
        - ``lookup_table``: the realised global lookup table (each entry
          pays its Elias-coded length key L(S'') plus its offset payload);
        - ``length_encodings``: per-chunk handles into the realised table
          (``ceil(log2 |table|)`` bits each).  §4.7 invites exactly this
          kind of practical alteration: since our table stores only the
          length sequences that actually occur, a chunk can reference its
          entry with a handle instead of repeating the full L(S'') string;
        - ``flags``: the per-chunk vector-vs-table flag bits of §4.7.1.
        """
        total = max(2, self._total_capacity)
        offset_bits = (total - 1).bit_length()
        l1 = len(self._groups) * offset_bits
        l2 = 0
        l3 = 0
        table_chunks = 0
        scan_lengths = 0
        flags = 0
        for g_index, group in enumerate(self._groups):
            rel_bits = max(1, (max(2, group.capacity) - 1).bit_length())
            if group.complete:
                # One complete level-2 offset vector for the whole group.
                count = sum(len(v) for v in group.item_offsets if v)
                l2 += count * rel_bits
                continue
            l2 += len(group.chunk_offsets) * rel_bits
            flags += len(group.chunk_offsets)
            for c, offsets in enumerate(group.item_offsets):
                chunk_bits = max(2, group.chunk_caps[c])
                chunk_off_bits = (chunk_bits - 1).bit_length()
                if offsets is not None:
                    l3 += len(offsets) * chunk_off_bits
                elif group.chunk_size <= self._TABLE_KEY_MAX_ITEMS:
                    table_chunks += 1
                else:
                    # §4.5-regime chunk: stores its L(S'') inline and is
                    # decoded by a short scan instead of the table.
                    for width in self._chunk_lengths(g_index, c):
                        scan_lengths += elias_delta_length(width)
        # Each realised table entry stores its length key once; table
        # chunks reference entries through a log2(|table|)-bit handle.
        handle_bits = max(1, max(2, len(self._table)).bit_length())
        lengths = table_chunks * handle_bits + scan_lengths
        table = 0
        for key, value in self._table.items():
            key_bits = sum(elias_delta_length(w) for w in key)
            val_bits = len(value) * max(1, (self._table_threshold).bit_length())
            table += key_bits + val_bits
        return {
            "base_array": self._total_capacity,
            "l1_coarse": l1,
            "l2_offsets": l2,
            "l3_offsets": l3,
            "lookup_table": table,
            "length_encodings": lengths,
            "flags": flags,
        }

    def total_bits(self) -> int:
        """Total model size in bits (sum of the storage breakdown)."""
        return sum(self.storage_breakdown().values())

    def index_bits(self) -> int:
        """Index overhead in bits: everything except the base array."""
        breakdown = self.storage_breakdown()
        return sum(v for k, v in breakdown.items() if k != "base_array")

    def raw_bits(self) -> int:
        """Bits occupied by the counter fields alone (no slack, no index)."""
        return sum(self._widths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StringArrayIndex(m={self._m}, "
                f"base={self._total_capacity} bits, "
                f"rebuilds={self.rebuilds})")
