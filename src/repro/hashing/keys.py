"""Stable canonicalisation of arbitrary keys to 64-bit integers.

Python's built-in :func:`hash` is randomised per process for strings, which
would make experiments irreproducible.  Every filter in this package first
maps its key through :func:`canonical_key`, which is a pure function of the
key's value: integers map through a fixed bijective mixer and everything
else is digested with BLAKE2b.
"""

from __future__ import annotations

import hashlib

_MASK64 = (1 << 64) - 1

# SplitMix64 constants (Steele et al.); a fixed bijection on 64-bit words.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """One round of the SplitMix64 finalizer (a 64-bit bijection)."""
    x = (x + _SPLITMIX_GAMMA) & _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    x ^= x >> 31
    return x


def canonical_key(key: object) -> int:
    """Map an arbitrary hashable key to a stable unsigned 64-bit integer.

    Supported key types are ``int``, ``str``, ``bytes``, ``float``, ``bool``,
    ``None`` and (nested) tuples of those.  Distinct small integers map to
    distinct outputs (the integer path is a bijection on 64-bit words), so
    the synthetic integer-keyed workloads of the paper lose nothing to
    canonicalisation.

    Raises:
        TypeError: for unsupported key types (e.g. lists, dicts).
    """
    if type(key) is int:
        return _splitmix64(key & _MASK64)
    if type(key) is bool:
        return _splitmix64(int(key))
    if isinstance(key, int):  # bool subclasses and IntEnum members
        return _splitmix64(int(key) & _MASK64)
    if isinstance(key, str):
        data = b"s" + key.encode("utf-8")
    elif isinstance(key, bytes):
        data = b"b" + key
    elif isinstance(key, float):
        data = b"f" + key.hex().encode("ascii")
    elif key is None:
        data = b"n"
    elif isinstance(key, tuple):
        parts = [canonical_key(part).to_bytes(8, "little") for part in key]
        data = b"t" + b"".join(parts)
    else:
        raise TypeError(f"unsupported key type: {type(key).__name__}")
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "little")
