"""Blocked ("external memory") hashing [MW94] (paper §1.1.3, §2.2).

"In [MW94], a multi-level hashing scheme was proposed for Bloom filters,
in which a first [hash function] hashes each value to a specific block,
and the hash functions of the Bloom Filter hash within that block."  All
``k`` probes of a key then land inside one block, so a disk-resident
filter pays a single block read per lookup instead of up to ``k``.

"The analysis in [MW94] showed that the accuracy of the Bloom Filter is
affected by the segmentation of the available hashing domain, but for
large enough segments, the difference is negligible.  The same analysis
applies in the SBF case" — the ablation benchmark measures exactly that
accuracy delta as the block size shrinks.
"""

from __future__ import annotations

from repro.hashing.families import HashFamily, MultiplyShiftFamily

_MASK64 = (1 << 64) - 1


class BlockedHashFamily(HashFamily):
    """Two-level hash family: block selector + within-block probes.

    Args:
        m: total number of counters/bits.
        k: probes per key (all inside one block).
        block_size: counters per block; the last block may be smaller.
            Must satisfy ``1 <= block_size <= m``.
        seed: determinism seed.

    The I/O cost model: one lookup touches exactly one block, so
    :meth:`blocks_touched` is always 1 (vs up to ``k`` for an unblocked
    family of the same parameters).
    """

    def __init__(self, m: int, k: int, seed: int = 0, *,
                 block_size: int | None = None):
        super().__init__(m, k, seed)
        if block_size is None:
            block_size = max(1, m // 64)
        if not 1 <= block_size <= m:
            raise ValueError(
                f"block_size must be in [1, m={m}], got {block_size}")
        self.block_size = int(block_size)
        # Blocks partition [0, m) as evenly as possible: block b covers
        # [b*m // n_blocks, (b+1)*m // n_blocks).  This avoids the
        # degenerate tiny remainder block a fixed-width layout would leave
        # when block_size does not divide m.
        self.n_blocks = max(1, round(self.m / self.block_size))
        # Selector over blocks and k probes mapped into the block width.
        self._selector = MultiplyShiftFamily(self.n_blocks, 1, seed ^ 0xB10C)
        self._inner = MultiplyShiftFamily(self.m, k, seed ^ 0x1AEA)

    def _block_span(self, block: int) -> tuple[int, int]:
        start = block * self.m // self.n_blocks
        end = (block + 1) * self.m // self.n_blocks
        return start, max(1, end - start)

    def indices_hashed(self, hashed: int) -> tuple[int, ...]:
        block = self._selector.indices_hashed(hashed)[0]
        start, width = self._block_span(block)
        return tuple(start + (i % width)
                     for i in self._inner.indices_hashed(hashed))

    def block_of(self, key: object) -> int:
        """The block owning *key* — every probe of *key* lands inside it.

        This makes the block the natural sharding unit: a fleet that
        routes keys by ``block_of(key) % n_shards`` partitions the
        *counter space* along with the keyspace, so per-shard counters are
        exactly the slices of the one big filter (see
        :mod:`repro.serve.router`).
        """
        return self._selector.indices(key)[0]

    def blocks_touched(self, key: object) -> int:
        """Blocks a lookup for *key* reads — always 1 by construction."""
        return 1

    def is_compatible(self, other: "HashFamily") -> bool:
        return (super().is_compatible(other)
                and isinstance(other, BlockedHashFamily)
                and self.block_size == other.block_size)

    def spawn(self, m: int | None = None, k: int | None = None,
              ) -> "BlockedHashFamily":
        return BlockedHashFamily(m if m is not None else self.m,
                                 k if k is not None else self.k,
                                 self.seed, block_size=self.block_size)
