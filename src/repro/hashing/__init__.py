"""Hash-function families used by every filter in this package.

The paper (Section 6.1) builds its Spectral Bloom Filters from
"modulo/multiply" hash functions ``H(v) = ceil(m * (alpha * v mod 1))`` with
``alpha`` drawn uniformly at random.  :class:`ModuloMultiplyFamily` is an
exact 64-bit fixed-point implementation of that scheme; the other families
are standard alternatives used by the ablation benchmarks.

All families are deterministic given their seed, which makes every experiment
in this repository reproducible bit-for-bit.
"""

from repro.hashing.keys import canonical_key
from repro.hashing.families import (
    HashFamily,
    ModuloMultiplyFamily,
    MultiplyShiftFamily,
    TabulationFamily,
    DoubleHashingFamily,
    make_family,
)
from repro.hashing.blocked import BlockedHashFamily

__all__ = [
    "canonical_key",
    "HashFamily",
    "ModuloMultiplyFamily",
    "MultiplyShiftFamily",
    "TabulationFamily",
    "DoubleHashingFamily",
    "BlockedHashFamily",
    "make_family",
]
