"""Families of ``k`` hash functions mapping keys into ``{0, ..., m-1}``.

The Bloom filter and all its spectral extensions need ``k`` independent hash
functions ``h_1 ... h_k`` from the key universe into the counter array
(Section 2.1 of the paper).  Each family here produces such a bundle from a
single integer seed, so that two filters built with the same ``(m, k, seed,
family)`` are *compatible*: they hash every key to the same positions, which
is the precondition for SBF union and join multiplication (Section 2.2).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.hashing.keys import canonical_key

_MASK64 = (1 << 64) - 1


class HashFamily(ABC):
    """A bundle of ``k`` hash functions onto ``{0, ..., m-1}``.

    Attributes:
        m: size of the target range (number of counters / bits).
        k: number of hash functions in the bundle.
        seed: the seed all internal randomness was derived from.
    """

    def __init__(self, m: int, k: int, seed: int = 0):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.m = int(m)
        self.k = int(k)
        self.seed = int(seed)

    @abstractmethod
    def indices_hashed(self, hashed: int) -> Sequence[int]:
        """Positions for an already-canonicalised 64-bit key value.

        Splitting canonicalisation (:func:`canonical_key`) from position
        computation lets bulk kernels canonicalise a whole batch once —
        vectorised for ints, per-key BLAKE2b for strings — and then feed
        the same values to any family, including ones whose position
        arithmetic is not vectorisable (tabulation, double hashing).
        """

    def indices(self, key: object) -> Sequence[int]:
        """Return the ``k`` positions for *key*, each in ``[0, m)``."""
        return self.indices_hashed(canonical_key(key))

    def is_compatible(self, other: "HashFamily") -> bool:
        """True if *other* hashes every key to the same positions.

        Compatibility is required for filter union and multiplication; the
        paper requires "the SBF to be identical in their parameters and hash
        functions" (Section 2.2).
        """
        return (
            type(self) is type(other)
            and self.m == other.m
            and self.k == other.k
            and self.seed == other.seed
        )

    def spawn(self, m: int | None = None, k: int | None = None) -> "HashFamily":
        """A family of the same type/seed with possibly different ``m``/``k``.

        Used by Recurring Minimum to derive the secondary SBF's functions
        from the primary's seed (so the two stay decorrelated but the whole
        structure remains reproducible from one seed).
        """
        return type(self)(m if m is not None else self.m,
                          k if k is not None else self.k,
                          self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(m={self.m}, k={self.k}, seed={self.seed})"


class ModuloMultiplyFamily(HashFamily):
    """The paper's hash functions: ``H(v) = ceil(m * (alpha*v mod 1))``.

    Section 6.1: "The SBF was implemented using hash functions of
    modulo/multiply type: given a value v, its hash value H(v),
    0 <= H(v) < m is computed by H(v) = ceil(m*(alpha*v mod 1)), where alpha
    is taken uniformly at random from [0, 1]."

    We realise ``alpha`` as a random odd 64-bit integer ``A`` interpreted as
    the fixed-point fraction ``A / 2**64``; then ``alpha*v mod 1`` is the low
    64 bits of ``A*v`` and the final index is ``(m * frac) >> 64`` — exact
    integer arithmetic, no floating point drift.
    """

    def __init__(self, m: int, k: int, seed: int = 0):
        super().__init__(m, k, seed)
        rng = random.Random((seed, "modmul", m, k).__repr__())
        # Odd multipliers avoid the degenerate alpha = 0 / even-cycle cases.
        self._multipliers = tuple(rng.randrange(1 << 63, 1 << 64) | 1
                                  for _ in range(k))

    def indices_hashed(self, hashed: int) -> tuple[int, ...]:
        m = self.m
        return tuple((m * ((a * hashed) & _MASK64)) >> 64
                     for a in self._multipliers)


class MultiplyShiftFamily(HashFamily):
    """Dietzfelbinger-style multiply-shift: ``((a*x + b) mod 2^64) * m >> 64``.

    A 2-universal family; slightly stronger mixing than the plain
    modulo/multiply scheme thanks to the additive term.
    """

    def __init__(self, m: int, k: int, seed: int = 0):
        super().__init__(m, k, seed)
        rng = random.Random((seed, "mshift", m, k).__repr__())
        self._params = tuple(
            (rng.randrange(1 << 63, 1 << 64) | 1, rng.randrange(1 << 64))
            for _ in range(k)
        )

    def indices_hashed(self, hashed: int) -> tuple[int, ...]:
        m = self.m
        return tuple((m * ((a * hashed + b) & _MASK64)) >> 64
                     for a, b in self._params)


class TabulationFamily(HashFamily):
    """Simple tabulation hashing (Zobrist): XOR of 8 byte-indexed tables.

    Tabulation is 3-independent and behaves like full randomness for many
    data-structure applications; included as the "strong mixing" ablation
    point.
    """

    def __init__(self, m: int, k: int, seed: int = 0):
        super().__init__(m, k, seed)
        rng = random.Random((seed, "tab", m, k).__repr__())
        self._tables = [
            [[rng.randrange(1 << 64) for _ in range(256)] for _ in range(8)]
            for _ in range(k)
        ]

    def indices_hashed(self, hashed: int) -> tuple[int, ...]:
        key_bytes = [(hashed >> (8 * byte)) & 0xFF for byte in range(8)]
        out = []
        m = self.m
        for tables in self._tables:
            h = 0
            for byte, table in zip(key_bytes, tables):
                h ^= table[byte]
            out.append((m * h) >> 64)
        return tuple(out)


class DoubleHashingFamily(HashFamily):
    """Kirsch-Mitzenmacher double hashing: ``g_i(x) = h1(x) + i*h2(x) mod m``.

    Derives all ``k`` positions from two base hashes; asymptotically matches
    independent hashing for Bloom filters while costing two multiplications
    per key regardless of ``k``.
    """

    def __init__(self, m: int, k: int, seed: int = 0):
        super().__init__(m, k, seed)
        rng = random.Random((seed, "double", m, k).__repr__())
        self._a1 = rng.randrange(1 << 63, 1 << 64) | 1
        self._b1 = rng.randrange(1 << 64)
        self._a2 = rng.randrange(1 << 63, 1 << 64) | 1
        self._b2 = rng.randrange(1 << 64)

    def indices_hashed(self, hashed: int) -> tuple[int, ...]:
        m = self.m
        h1 = (m * ((self._a1 * hashed + self._b1) & _MASK64)) >> 64
        h2 = (m * ((self._a2 * hashed + self._b2) & _MASK64)) >> 64
        # Force the stride to be nonzero so the k probes stay distinct
        # whenever m > 1.
        if h2 == 0:
            h2 = 1
        return tuple((h1 + i * h2) % m for i in range(self.k))


_FAMILIES = {
    "modmul": ModuloMultiplyFamily,
    "multiply-shift": MultiplyShiftFamily,
    "tabulation": TabulationFamily,
    "double": DoubleHashingFamily,
}


def make_family(name: str | HashFamily | type, m: int, k: int,
                seed: int = 0) -> HashFamily:
    """Build a hash family by short name, class, or pass an instance through.

    Accepted names: ``"modmul"`` (the paper's scheme, the default
    everywhere), ``"multiply-shift"``, ``"tabulation"``, ``"double"``.
    """
    if isinstance(name, HashFamily):
        if name.m != m or name.k != k:
            raise ValueError(
                f"hash family has (m={name.m}, k={name.k}) but the filter "
                f"needs (m={m}, k={k})"
            )
        return name
    if isinstance(name, type) and issubclass(name, HashFamily):
        return name(m, k, seed)
    if name == "blocked":
        from repro.hashing.blocked import BlockedHashFamily
        return BlockedHashFamily(m, k, seed)
    try:
        cls = _FAMILIES[name]
    except KeyError:
        known = sorted(_FAMILIES) + ["blocked"]
        raise ValueError(
            f"unknown hash family {name!r}; expected one of {known}"
        ) from None
    return cls(m, k, seed)
