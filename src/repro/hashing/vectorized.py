"""Vectorised hashing for bulk stream ingestion.

The experiments and any production use of the SBF ingest long streams of
keys; hashing them one Python call at a time dominates the cost.  This
module vectorises the two multiplication-based families over numpy arrays
of integer keys, producing an ``(n, k)`` index matrix in a handful of
array operations.

Numerical note: numpy has no 128-bit integers, so the 64x64→high-64
multiply ``(m * (a*v mod 2^64)) >> 64`` is decomposed into 32-bit halves —
exactly bit-equivalent to the scalar path, which the tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import (
    HashFamily,
    ModuloMultiplyFamily,
    MultiplyShiftFamily,
)
from repro.hashing.keys import _MIX1, _MIX2, _SPLITMIX_GAMMA

_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def _mul_mod_2_64(a: np.ndarray | int, b: np.ndarray) -> np.ndarray:
    """``(a * b) mod 2^64`` for uint64 arrays (numpy wraps, but silence
    overflow semantics explicitly)."""
    with np.errstate(over="ignore"):
        return (np.uint64(a) * b).astype(np.uint64)


def _mul_high_64(a: int, b: np.ndarray) -> np.ndarray:
    """High 64 bits of the 128-bit product ``a * b`` (a scalar, b uint64).

    Standard 32-bit limb decomposition:
        a = a1*2^32 + a0,  b = b1*2^32 + b0
        a*b = a1*b1*2^64 + (a1*b0 + a0*b1)*2^32 + a0*b0
    """
    a = int(a)
    a0 = np.uint64(a & 0xFFFFFFFF)
    a1 = np.uint64(a >> 32)
    b0 = b & _MASK32
    b1 = b >> _SHIFT32
    with np.errstate(over="ignore"):
        lo = a0 * b0                      # < 2^64, exact
        mid1 = a1 * b0                    # < 2^64, exact
        mid2 = a0 * b1
        carry = ((lo >> _SHIFT32) + (mid1 & _MASK32)
                 + (mid2 & _MASK32)) >> _SHIFT32
        return (a1 * b1 + (mid1 >> _SHIFT32) + (mid2 >> _SHIFT32)
                + carry).astype(np.uint64)


def canonical_keys_array(keys: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.hashing.keys.canonical_key` for int arrays.

    Applies the same SplitMix64 finaliser, so mixed scalar/vector usage
    sees identical hash positions.
    """
    x = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        x = x + np.uint64(_SPLITMIX_GAMMA)
        x = x ^ (x >> np.uint64(30))
        x = _mul_mod_2_64(_MIX1, x)
        x = x ^ (x >> np.uint64(27))
        x = _mul_mod_2_64(_MIX2, x)
        x = x ^ (x >> np.uint64(31))
    return x


def indices_matrix(family: HashFamily, keys: np.ndarray) -> np.ndarray:
    """``(n, k)`` counter positions for an integer key array.

    Supports :class:`ModuloMultiplyFamily`, :class:`MultiplyShiftFamily`,
    and :class:`~repro.hashing.blocked.BlockedHashFamily` (whose selector
    and inner families are both multiply-shift); other families raise
    ``TypeError`` (use the scalar path for them).
    """
    from repro.hashing.blocked import BlockedHashFamily

    if isinstance(family, BlockedHashFamily):
        # Two vectorised passes mirror the scalar two-level scheme
        # exactly: block selection, then within-block probes.
        blocks = indices_matrix(family._selector, keys)[:, 0]
        start = blocks * family.m // family.n_blocks
        end = (blocks + 1) * family.m // family.n_blocks
        width = np.maximum(1, end - start)
        inner = indices_matrix(family._inner, keys)
        return (start[:, None] + inner % width[:, None]).astype(np.int64)
    hashed = canonical_keys_array(keys)
    m = family.m
    out = np.empty((len(hashed), family.k), dtype=np.int64)
    if isinstance(family, ModuloMultiplyFamily):
        for j, a in enumerate(family._multipliers):
            frac = _mul_mod_2_64(a, hashed)
            out[:, j] = _mul_high_64(m, frac).astype(np.int64)
        return out
    if isinstance(family, MultiplyShiftFamily):
        for j, (a, b) in enumerate(family._params):
            with np.errstate(over="ignore"):
                mixed = (_mul_mod_2_64(a, hashed)
                         + np.uint64(b)).astype(np.uint64)
            out[:, j] = _mul_high_64(m, mixed).astype(np.int64)
        return out
    raise TypeError(
        f"vectorised hashing not implemented for "
        f"{type(family).__name__}; use the scalar indices() path")


def bulk_insert_ms(sbf, keys) -> None:
    """Vectorised Minimum-Selection ingestion of an integer key stream.

    Equivalent to ``for x in keys: sbf.insert(x)`` for an MS-method SBF on
    the array backend, but ~20x faster: one ``np.add.at`` scatter over the
    counter array.  Raises for other methods/backends, whose semantics are
    inherently per-item.
    """
    from repro.core.methods import MinimumSelection
    from repro.storage.backends import ArrayBackend

    if not isinstance(sbf.method, MinimumSelection):
        raise TypeError("bulk_insert_ms requires the MS method (MI/RM "
                        "updates are order-dependent)")
    if not isinstance(sbf.counters, ArrayBackend):
        raise TypeError("bulk_insert_ms requires the array backend")
    keys = np.asarray(keys)
    if keys.size == 0:
        return
    matrix = indices_matrix(sbf.family, keys)
    counts = np.zeros(sbf.m, dtype=np.int64)
    np.add.at(counts, matrix.ravel(), 1)
    store = sbf.counters._counts
    for i in np.nonzero(counts)[0]:
        store[i] += int(counts[i])
    sbf.total_count += int(keys.size)
