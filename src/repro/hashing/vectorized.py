"""Vectorised hashing for bulk stream ingestion.

The experiments and any production use of the SBF ingest long streams of
keys; hashing them one Python call at a time dominates the cost.  This
module vectorises the pipeline over batches:

- :func:`canonicalize_many` — batch :func:`repro.hashing.keys.canonical_key`.
  Integer keys go through a vectorised SplitMix64 finaliser; str/bytes/
  float/tuple keys need a per-key BLAKE2b digest (inherently scalar) but
  mixed batches split into the two populations by position, so an int-heavy
  stream pays the digest only for its non-int minority.
- :func:`indices_matrix` — an ``(n, k)`` position matrix in a handful of
  array operations for the multiplication-based families (and the blocked
  family built from them).
- :func:`matrix_for` — the same matrix for *any* family: vectorised when
  possible, otherwise an exact ``indices_hashed`` loop over the already
  canonicalised values.  This is what the core bulk kernels call, so every
  method × family combination has a correct bulk path.

Numerical note: numpy has no 128-bit integers, so the 64x64→high-64
multiply ``(m * (a*v mod 2^64)) >> 64`` is decomposed into 32-bit halves —
exactly bit-equivalent to the scalar path, which the tests assert.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.hashing.families import (
    HashFamily,
    ModuloMultiplyFamily,
    MultiplyShiftFamily,
)
from repro.hashing.keys import _MIX1, _MIX2, _SPLITMIX_GAMMA, canonical_key

_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
_MASK64 = (1 << 64) - 1


def _mul_mod_2_64(a: np.ndarray | int, b: np.ndarray) -> np.ndarray:
    """``(a * b) mod 2^64`` for uint64 arrays (numpy wraps, but silence
    overflow semantics explicitly)."""
    with np.errstate(over="ignore"):
        return (np.uint64(a) * b).astype(np.uint64)


def _mul_high_64(a: int, b: np.ndarray) -> np.ndarray:
    """High 64 bits of the 128-bit product ``a * b`` (a scalar, b uint64).

    Standard 32-bit limb decomposition:
        a = a1*2^32 + a0,  b = b1*2^32 + b0
        a*b = a1*b1*2^64 + (a1*b0 + a0*b1)*2^32 + a0*b0
    """
    a = int(a)
    a0 = np.uint64(a & 0xFFFFFFFF)
    a1 = np.uint64(a >> 32)
    b0 = b & _MASK32
    b1 = b >> _SHIFT32
    with np.errstate(over="ignore"):
        lo = a0 * b0                      # < 2^64, exact
        mid1 = a1 * b0                    # < 2^64, exact
        mid2 = a0 * b1
        carry = ((lo >> _SHIFT32) + (mid1 & _MASK32)
                 + (mid2 & _MASK32)) >> _SHIFT32
        return (a1 * b1 + (mid1 >> _SHIFT32) + (mid2 >> _SHIFT32)
                + carry).astype(np.uint64)


def canonical_keys_array(keys: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.hashing.keys.canonical_key` for int arrays.

    Applies the same SplitMix64 finaliser, so mixed scalar/vector usage
    sees identical hash positions.
    """
    x = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        x = x + np.uint64(_SPLITMIX_GAMMA)
        x = x ^ (x >> np.uint64(30))
        x = _mul_mod_2_64(_MIX1, x)
        x = x ^ (x >> np.uint64(27))
        x = _mul_mod_2_64(_MIX2, x)
        x = x ^ (x >> np.uint64(31))
    return x


def _ints_to_uint64(values: list) -> np.ndarray:
    """Python ints → uint64 with the same wrap as ``key & MASK64``."""
    try:
        # int64 accepts negatives; the uint64 view is the two's-complement
        # wrap, identical to masking.
        return np.asarray(values, dtype=np.int64).astype(np.uint64)
    except OverflowError:
        return np.asarray([v & _MASK64 for v in values], dtype=np.uint64)


def _digest_batch(values: list, encode) -> np.ndarray:
    """Batched BLAKE2b canonicalisation for one homogeneous key type.

    The digest itself is inherently per-key, but the batch still beats
    ``canonical_key`` in a generator two ways: the type-dispatch cascade
    is resolved once for the whole batch with the hot names (``blake2b``,
    ``int.from_bytes``, *encode*) bound locally, and duplicate keys are
    digested once — a skewed stream (the common case for string keys:
    URLs, tenant names, zipf workloads) pays one digest per *distinct*
    key.  A cheap full-batch ``set()`` (an order of magnitude cheaper
    than the digests it can save) decides whether the memo table pays;
    mostly-unique batches skip it and just run the tight loop.
    Bit-identical to the scalar path by construction: *encode* produces
    exactly the domain-prefixed bytes :func:`canonical_key` digests.
    """
    blake2b = hashlib.blake2b
    from_bytes = int.from_bytes
    n = len(values)
    distinct = set(values)
    if len(distinct) <= n // 2:
        memo = {value: from_bytes(
            blake2b(encode(value), digest_size=8).digest(), "little")
            for value in distinct}
        return np.fromiter((memo[value] for value in values),
                           dtype=np.uint64, count=n)
    return np.fromiter(
        (from_bytes(blake2b(encode(value), digest_size=8).digest(),
                    "little") for value in values),
        dtype=np.uint64, count=n)


def _encode_str(value: str) -> bytes:
    return b"s" + value.encode("utf-8")


def _encode_bytes(value: bytes) -> bytes:
    return b"b" + value


#: exact key type → domain-prefix encoder for the batched digest path
#: (subclasses and composite types fall back to scalar canonical_key,
#: which handles them identically — just slower)
_BATCH_ENCODERS = {str: _encode_str, bytes: _encode_bytes}


def canonicalize_many(keys) -> np.ndarray:
    """Canonical 64-bit values for a batch of arbitrary keys.

    Accepts any sequence :func:`canonical_key` accepts element-wise (plus
    integer/string/bytes numpy arrays) and returns a ``uint64`` array with
    identical values, so bulk and scalar paths hash every key to the same
    positions.  Exact-``int`` keys vectorise through the SplitMix64
    kernel; ``str``/``bytes`` keys take the batched-digest fast path
    (:func:`_digest_batch` — one memoised BLAKE2b per distinct key);
    floats, tuples, and exotic subclasses pay the scalar digest.  Mixed
    batches split into these populations by position.
    """
    if isinstance(keys, np.ndarray):
        if keys.dtype.kind in ("i", "u"):
            return canonical_keys_array(keys)
        if keys.dtype.kind == "b":
            return canonical_keys_array(keys.astype(np.uint64))
        if keys.dtype.kind == "U":
            return _digest_batch(keys.tolist(), _encode_str)
        if keys.dtype.kind == "S":
            return _digest_batch(keys.tolist(), _encode_bytes)
        keys = keys.tolist()
    elif not isinstance(keys, (list, tuple)):
        keys = list(keys)
    n = len(keys)
    out = np.empty(n, dtype=np.uint64)
    if n == 0:
        return out
    first_type = type(keys[0])
    encode = _BATCH_ENCODERS.get(first_type)
    if encode is not None and all(type(key) is first_type for key in keys):
        # Homogeneous str/bytes batch: straight to the digest loop, no
        # population split or position gather.
        return _digest_batch(keys, encode)
    if first_type in (int, bool):
        # Let numpy's C conversion loop try the whole batch at once —
        # an order of magnitude cheaper than the per-element type scan
        # below.  It only yields an integer/bool 1-D array when every
        # element is an int or bool (floats infer float64, ints beyond
        # int64 and None infer object, nested tuples go 2-D or raise),
        # and bools canonicalise exactly like their int values, so the
        # fast path can never change a hash.
        try:
            arr = np.asarray(keys)
        except (ValueError, OverflowError):
            arr = None
        if arr is not None and arr.ndim == 1:
            if arr.dtype.kind in ("i", "u"):
                return canonical_keys_array(arr)
            if arr.dtype.kind == "b":
                return canonical_keys_array(arr.astype(np.uint64))
    is_int = np.fromiter((type(key) is int for key in keys),
                         dtype=bool, count=n)
    if is_int.all():
        return canonical_keys_array(_ints_to_uint64(list(keys)))
    int_pos = np.flatnonzero(is_int)
    if int_pos.size:
        ints = [keys[i] for i in int_pos.tolist()]
        out[int_pos] = canonical_keys_array(_ints_to_uint64(ints))
    other_pos = np.flatnonzero(~is_int)
    by_type: dict[type, list[int]] = {}
    for i in other_pos.tolist():
        by_type.setdefault(type(keys[i]), []).append(i)
    for key_type, positions in by_type.items():
        encode = _BATCH_ENCODERS.get(key_type)
        if encode is not None:
            out[positions] = _digest_batch(
                [keys[i] for i in positions], encode)
        else:
            out[positions] = np.fromiter(
                (canonical_key(keys[i]) for i in positions),
                dtype=np.uint64, count=len(positions))
    return out


def supports_vectorized(family: HashFamily) -> bool:
    """True if :func:`indices_matrix` has an array kernel for *family*."""
    from repro.hashing.blocked import BlockedHashFamily

    if isinstance(family, BlockedHashFamily):
        return (supports_vectorized(family._selector)
                and supports_vectorized(family._inner))
    return isinstance(family, (ModuloMultiplyFamily, MultiplyShiftFamily))


def _matrix_from_hashed(family: HashFamily, hashed: np.ndarray) -> np.ndarray:
    """``(n, k)`` positions from already-canonicalised uint64 values."""
    from repro.hashing.blocked import BlockedHashFamily

    if isinstance(family, BlockedHashFamily):
        # Two vectorised passes mirror the scalar two-level scheme
        # exactly: block selection, then within-block probes.
        blocks = _matrix_from_hashed(family._selector, hashed)[:, 0]
        start = blocks * family.m // family.n_blocks
        end = (blocks + 1) * family.m // family.n_blocks
        width = np.maximum(1, end - start)
        inner = _matrix_from_hashed(family._inner, hashed)
        return (start[:, None] + inner % width[:, None]).astype(np.int64)
    m = family.m
    out = np.empty((len(hashed), family.k), dtype=np.int64)
    if isinstance(family, ModuloMultiplyFamily):
        for j, a in enumerate(family._multipliers):
            frac = _mul_mod_2_64(a, hashed)
            out[:, j] = _mul_high_64(m, frac).astype(np.int64)
        return out
    if isinstance(family, MultiplyShiftFamily):
        for j, (a, b) in enumerate(family._params):
            with np.errstate(over="ignore"):
                mixed = (_mul_mod_2_64(a, hashed)
                         + np.uint64(b)).astype(np.uint64)
            out[:, j] = _mul_high_64(m, mixed).astype(np.int64)
        return out
    raise TypeError(
        f"vectorised hashing not implemented for "
        f"{type(family).__name__}; use the scalar indices() path")


def indices_matrix(family: HashFamily, keys, *,
                   canonical: bool = False) -> np.ndarray:
    """``(n, k)`` counter positions for a key batch.

    Supports :class:`ModuloMultiplyFamily`, :class:`MultiplyShiftFamily`,
    and :class:`~repro.hashing.blocked.BlockedHashFamily` (whose selector
    and inner families are both multiply-shift); other families raise
    ``TypeError`` (use :func:`matrix_for`, which falls back to an exact
    scalar loop).  With ``canonical=True``, *keys* must already be the
    uint64 output of :func:`canonicalize_many` and the mixer is skipped —
    this is how callers hash one batch against several families (e.g. the
    blocked selector and inner, or a shard router plus its shards) without
    re-canonicalising.
    """
    if canonical:
        hashed = np.asarray(keys, dtype=np.uint64)
    else:
        hashed = canonicalize_many(keys)
    return _matrix_from_hashed(family, hashed)


def matrix_for(family: HashFamily, canon: np.ndarray) -> np.ndarray:
    """``(n, k)`` positions from canonical values, for *any* family.

    Vectorised when the family supports it; otherwise an exact
    ``indices_hashed`` loop.  Either way the rows equal
    ``family.indices(key)`` for the corresponding original keys.
    """
    canon = np.asarray(canon, dtype=np.uint64)
    if supports_vectorized(family):
        return _matrix_from_hashed(family, canon)
    out = np.empty((canon.size, family.k), dtype=np.int64)
    for i, value in enumerate(canon.tolist()):
        out[i] = family.indices_hashed(value)
    return out


def bulk_insert_ms(sbf, keys) -> None:
    """Vectorised Minimum-Selection ingestion of a key stream.

    Equivalent to ``for x in keys: sbf.insert(x)`` for an MS-method SBF on
    an array-shaped backend, but ~20x faster.  Kept as a thin validating
    wrapper over :meth:`SpectralBloomFilter.insert_many` for backward
    compatibility; it still raises for other methods/backends, matching
    its original contract (``insert_many`` itself accepts every method and
    backend).
    """
    from repro.core.methods import MinimumSelection
    from repro.storage.backends import ArrayBackend, NumpyBackend

    if not isinstance(sbf.method, MinimumSelection):
        raise TypeError("bulk_insert_ms requires the MS method (use "
                        "insert_many for MI/RM, which handles their "
                        "order-dependent updates exactly)")
    if not isinstance(sbf.counters, (ArrayBackend, NumpyBackend)):
        raise TypeError("bulk_insert_ms requires an array-shaped backend")
    keys = np.asarray(keys)
    if keys.size == 0:
        return
    sbf.insert_many(keys)
