"""Deterministic workload generation for scenario replay.

One :class:`WorkloadGenerator` per scenario turns the spec's workload
block into a reproducible op stream: key ranks come from the repo's own
:class:`~repro.data.zipf.ZipfDistribution` (the paper's workload model),
op verbs from a seeded mix draw, and every random decision hangs off the
scenario seed — the same spec always replays the same stream, which is
what lets the oracle demand bit-identical answers.

Three key distributions:

- ``zipf``: ranks drawn from ``ZipfDistribution(n, skew)`` — the CDN /
  iceberg / hotlist shape where a few keys dominate;
- ``uniform``: ranks uniform over ``n`` — the rate-limiter shape where
  every client is equally likely;
- ``adversarial``: a hot set of ``hot`` keys takes ``hot_fraction`` of
  the traffic (the deliberate hot-shard / hot-counter attack), the rest
  uniform over ``n``.

Deletes are only generated for keys whose *acknowledged* count is
positive (the generator tracks the live multiset), so a scenario never
manufactures semantic errors; a delete drawn with nothing to delete
degrades to an insert.  Bulk traffic is modelled as bursts: with
probability ``bulk_fraction`` the generator emits ``bulk_size`` ops of
one verb back-to-back, which the engine's batcher then coalesces — the
serving stack's actual bulk path.
"""

from __future__ import annotations

import random

from repro.data.zipf import ZipfDistribution

__all__ = ["Op", "WorkloadGenerator"]


class Op:
    """One generated operation (plus the bookkeeping the oracle needs)."""

    __slots__ = ("verb", "key", "count", "threshold")

    def __init__(self, verb: str, key: object, count: int = 1,
                 threshold: int = 1):
        self.verb = verb
        self.key = key
        self.count = count
        self.threshold = threshold

    def as_submit_args(self) -> tuple:
        """The ``(verb, key[, arg])`` tuple ``ServingEngine.submit`` takes."""
        if self.verb in ("insert", "delete"):
            return (self.verb, self.key, self.count)
        if self.verb == "contains":
            return (self.verb, self.key, self.threshold)
        return (self.verb, self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.verb} {self.key!r} x{self.count})"


class WorkloadGenerator:
    """Seeded op-stream generator over a normalised workload block.

    Args:
        workload: the spec's (normalised) ``workload`` dict.
        seed: scenario seed; every internal RNG derives from it.
        tenants: for tenant topologies, the live tenant list — keys are
            emitted as composite ``(tenant, key)`` pairs drawn uniformly
            over whatever the list holds *at generation time* (the
            runner mutates it on mount/unmount events).
    """

    def __init__(self, workload: dict, seed: int, *,
                 tenants: list | None = None):
        self._workload = workload
        self._rng = random.Random(seed ^ 0x5BF)
        self._keys_cfg = workload["keys"]
        self._tenants = tenants
        self._zipf_ranks: list[int] = []
        self._zipf_draws = 0
        self._seed = seed
        # The acknowledged multiset: delete targets come from here so a
        # generated delete always has something to remove.  The *runner*
        # confirms/cancels after the fleet acks or refuses the write.
        self._live: dict[object, int] = {}
        self._live_keys: list[object] = []
        self._burst: list[Op] = []

    # -- key material ------------------------------------------------------
    def _rank(self) -> int:
        cfg = self._keys_cfg
        if cfg["dist"] == "zipf":
            if not self._zipf_ranks:
                dist = ZipfDistribution(cfg["n"], cfg["skew"])
                sample = dist.sample(
                    4096, seed=(self._seed + self._zipf_draws) & 0x7FFFFFFF)
                self._zipf_ranks = [int(r) for r in sample][::-1]
                self._zipf_draws += 1
            return self._zipf_ranks.pop()
        if cfg["dist"] == "adversarial" \
                and self._rng.random() < cfg["hot_fraction"]:
            return self._rng.randrange(cfg["hot"])
        return self._rng.randrange(cfg["n"])

    def _key(self) -> object:
        key = f"k:{self._rank()}"
        if self._tenants is not None:
            if not self._tenants:
                raise RuntimeError("no tenant is mounted; the fault "
                                   "schedule unmounted them all")
            return (self._rng.choice(self._tenants), key)
        return key

    def _absent_key(self) -> object:
        key = f"miss:{self._rng.randrange(1 << 30)}"
        if self._tenants is not None:
            return (self._rng.choice(self._tenants), key)
        return key

    # -- the acknowledged multiset (runner feedback) -----------------------
    def note_acked(self, op: Op) -> None:
        """Record an acknowledged write so deletes stay well-founded."""
        if op.verb == "insert":
            if op.key not in self._live:
                self._live_keys.append(op.key)
            self._live[op.key] = self._live.get(op.key, 0) + op.count
        elif op.verb == "delete":
            left = self._live.get(op.key, 0) - op.count
            if left > 0:
                self._live[op.key] = left
            else:
                self._live.pop(op.key, None)

    def live_sample(self, n: int) -> list:
        """The first *n* keys with positive acknowledged count, in first-
        insertion order — the settle audit's deterministic sample."""
        out = []
        for key in self._live_keys:
            if self._live.get(key, 0) > 0:
                out.append(key)
                if len(out) >= n:
                    break
        return out

    def drop_tenant(self, tenant: object) -> None:
        """Forget a tenant's keys (its filter was unmounted)."""
        dead = [key for key in self._live
                if isinstance(key, tuple) and key[0] == tenant]
        for key in dead:
            del self._live[key]

    def _deletable(self) -> Op | None:
        for _ in range(8):
            if not self._live:
                return None
            key = self._rng.choice(self._live_keys)
            count = self._live.get(key, 0)
            if count > 0:
                if self._tenants is not None \
                        and key[0] not in self._tenants:
                    continue
                return Op("delete", key, 1)
            self._live_keys.remove(key)
        return None

    # -- op stream ---------------------------------------------------------
    def _draw_verb(self, mix: dict) -> str:
        u = self._rng.random()
        for verb, p in mix.items():
            if u < p:
                return verb
            u -= p
        return next(iter(mix))

    def _one(self, mix: dict) -> Op:
        verb = self._draw_verb(mix)
        if verb == "insert":
            return Op("insert", self._key(),
                      self._rng.randint(
                          1, self._workload["insert_count_max"]))
        if verb == "delete":
            op = self._deletable()
            return op if op is not None else Op(
                "insert", self._key(), 1)
        if verb == "contains":
            return Op("contains", self._key(),
                      threshold=self._workload["contains_threshold"])
        # query: mostly present-distribution keys, some definite misses
        # (false-positive territory — still bit-identical to the oracle).
        if self._rng.random() < self._workload["absent_fraction"]:
            return Op("query", self._absent_key())
        return Op("query", self._key())

    def next_op(self, mix: dict) -> Op:
        """The next op of the stream under *mix* (phase-resolved)."""
        if self._burst:
            return self._burst.pop()
        if self._workload["bulk_fraction"] > 0 \
                and self._rng.random() < self._workload["bulk_fraction"]:
            verb = self._draw_verb(mix)
            size = self._workload["bulk_size"]
            self._burst = [self._one({verb: 1.0}) for _ in range(size - 1)]
            self._burst.reverse()
        return self._one(mix)
