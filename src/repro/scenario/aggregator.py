"""Aggregate scenario reports into the versioned results document.

The aggregator leg of the harness: many per-scenario reports (the
runner's output) fold into one JSON document shaped like every other
file under ``benchmarks/results/`` — a ``meta`` block, a ``pass`` flag
the baseline CI guard keys on, and one summary row per scenario.  The
summary rows deliberately keep only the *stable* facts (op totals,
oracle verdicts, faults fired); per-phase metrics deltas stay in the
full reports, which the CI job uploads as an artifact instead of
committing.

:func:`compare_to_baseline` is the regression gate: a run regresses when
a scenario that passed in the committed baseline fails now, when a
baseline scenario disappeared, or when any oracle comparison count
dropped to zero (the harness silently checking nothing is itself a
failure mode).  Sim-time and throughput are *not* compared — they are
properties of the spec, not of the code under test, and tying CI to
them would make every workload tweak a "regression".
"""

from __future__ import annotations

import json

__all__ = ["aggregate", "compare_to_baseline", "summarize"]

#: bump when the aggregate document's shape changes
AGGREGATE_VERSION = 1


def summarize(report: dict) -> dict:
    """The stable per-scenario row the aggregate document keeps."""
    oracle = report["oracle"]
    return {
        "name": report["name"],
        "topology": report["topology"]["kind"],
        "pass": bool(report["pass"]),
        "ops": report["ops"]["submitted"],
        "acked_writes": report["ops"]["acked_writes"],
        "reads": report["ops"]["reads"],
        "refused": report["ops"]["refused"],
        "ambiguous": report["ops"]["ambiguous"],
        "compared": oracle["compared"],
        "exact_compared": oracle["exact_compared"],
        "wrong_answers": oracle["wrong_answers"],
        "audit_checked": report["audit_checked"],
        "faults_fired": report["faults_fired"],
        "availability_min": min(report["availability"].values())
        if report["availability"] else 1.0,
        "sim_seconds": report["sim_seconds"],
        "failures": report["failures"],
    }


def aggregate(reports: list[dict], *, quick: bool = False) -> dict:
    """Fold per-scenario reports into one results document."""
    scenarios = [summarize(report) for report in reports]
    return {
        "meta": {
            "benchmark": "scenarios",
            "version": AGGREGATE_VERSION,
            "quick": bool(quick),
            "count": len(scenarios),
        },
        "pass": all(row["pass"] for row in scenarios) and bool(scenarios),
        "scenarios": scenarios,
    }


def compare_to_baseline(current: dict, baseline: dict) -> list[str]:
    """Regressions of *current* against a committed *baseline* document.

    Returns human-readable regression strings (empty = clean).  Only
    stability facts are compared — pass/fail, scenario presence, and
    the oracle actually checking something — never timings.
    """
    regressions: list[str] = []
    base_rows = {row["name"]: row for row in baseline.get("scenarios", [])}
    current_rows = {row["name"]: row for row in current.get("scenarios", [])}
    for name, base in base_rows.items():
        row = current_rows.get(name)
        if row is None:
            regressions.append(f"scenario {name!r} vanished from the run")
            continue
        if base["pass"] and not row["pass"]:
            regressions.append(
                f"scenario {name!r} regressed: {row['failures']}")
        if base["compared"] > 0 and row["compared"] == 0:
            regressions.append(
                f"scenario {name!r} oracle compared 0 answers "
                f"(baseline compared {base['compared']})")
    if baseline.get("pass") and not current.get("pass"):
        failed = [row["name"] for row in current.get("scenarios", [])
                  if not row["pass"]]
        if not any(r.startswith("scenario") for r in regressions):
            regressions.append(f"aggregate pass flag dropped: {failed}")
    return regressions


def dumps(document: dict) -> str:
    """Stable serialisation for committed baselines (sorted keys,
    trailing newline — byte-stable across runs of the same code)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
