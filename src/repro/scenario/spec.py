"""Scenario specs: the declarative surface of the chaos harness.

A scenario is one document — a Python dict, a YAML file, or YAML text —
declaring five things (the k-eval config/runner split the ROADMAP names):

- ``topology``: what serves the traffic — ``single`` filter, ``sharded``
  fleet (optionally ``durable`` for crash events), ``replicated``
  remote replica sets over a :class:`~repro.db.faults.FaultyNetwork`,
  a ``procpool`` of worker processes, or a multi-tenant ``tenants``
  directory;
- ``workload``: key distribution (``zipf`` / ``uniform`` /
  ``adversarial`` hot-set), op mix (``insert`` / ``delete`` / ``query``
  / ``contains`` plus bulk bursts), and arrival pattern (``closed``
  one-at-a-time or ``open`` rate-driven on the simulated clock) with an
  optional per-op end-to-end ``deadline``;
- ``phases``: named traffic segments, each overriding mix/arrival;
- ``faults``: the schedule — events fired at global op indices or phase
  starts (see :mod:`repro.scenario.faults` for the action vocabulary);
- ``oracle``: checker knobs — audit sample size, per-phase availability
  floors, ambiguity tolerance (see :mod:`repro.scenario.oracle`).

:func:`load_spec` normalises any of the three input forms into one
validated plain dict (defaults applied, unknown keys rejected) so the
runner never guesses.  YAML loading prefers PyYAML when importable and
otherwise falls back to :func:`parse_simple_yaml`, a small block-style
subset parser (nested mappings, lists, scalars, comments) sufficient
for every spec under ``specs/`` — the harness must not grow a hard
dependency the base image lacks.
"""

from __future__ import annotations

import os

__all__ = ["load_spec", "parse_simple_yaml", "SpecError",
           "TOPOLOGY_KINDS", "VERBS"]

#: topology rungs the builder knows (the serving-stack ladder)
TOPOLOGY_KINDS = ("single", "sharded", "replicated", "procpool", "tenants")

#: op verbs a workload mix may weight
VERBS = ("insert", "delete", "query", "contains")


class SpecError(ValueError):
    """A scenario document failed validation."""


# --------------------------------------------------------------------------
# Minimal YAML-subset parsing (fallback when PyYAML is absent)
# --------------------------------------------------------------------------

def _scalar(text: str):
    """Parse one YAML scalar: null/bool/int/float/quoted/plain string."""
    text = text.strip()
    if text in ("", "~", "null", "Null", "NULL"):
        return None
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment (quote-aware enough for specs)."""
    quote = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in " \t"):
            return line[:i]
    return line


def _logical_lines(text: str) -> list[tuple[int, str]]:
    lines: list[tuple[int, str]] = []
    for raw in text.splitlines():
        line = _strip_comment(raw).rstrip()
        if not line.strip() or line.strip() == "---":
            continue
        indent = len(line) - len(line.lstrip(" "))
        lines.append((indent, line.strip()))
    return lines


def _parse_block(lines: list[tuple[int, str]], pos: int, indent: int,
                 ) -> tuple[object, int]:
    """Parse the block starting at *pos* whose items sit at *indent*."""
    if pos >= len(lines):
        return None, pos
    if lines[pos][1].startswith("- "):
        return _parse_list(lines, pos, indent)
    return _parse_map(lines, pos, indent)


def _parse_map(lines, pos: int, indent: int) -> tuple[dict, int]:
    result: dict = {}
    while pos < len(lines):
        line_indent, content = lines[pos]
        if line_indent < indent:
            break
        if line_indent > indent or content.startswith("- "):
            raise SpecError(f"bad YAML structure near {content!r}")
        if ":" not in content:
            raise SpecError(f"expected 'key: value', got {content!r}")
        key, _, rest = content.partition(":")
        key = _scalar(key)
        rest = rest.strip()
        pos += 1
        if rest:
            result[key] = _scalar(rest)
        elif pos < len(lines) and lines[pos][0] > indent:
            result[key], pos = _parse_block(lines, pos, lines[pos][0])
        else:
            result[key] = None
    return result, pos


def _parse_list(lines, pos: int, indent: int) -> tuple[list, int]:
    result: list = []
    while pos < len(lines):
        line_indent, content = lines[pos]
        if line_indent < indent or not content.startswith("- "):
            break
        item_text = content[2:].strip()
        # The "- key: value" form opens an inline mapping whose further
        # keys sit at the dash's indent + 2 on the following lines.
        if ":" in item_text and not item_text.startswith(("'", '"')):
            inner_indent = indent + 2
            lines.insert(pos + 1, (inner_indent, item_text))
            del lines[pos]
            item, pos = _parse_map(lines, pos, inner_indent)
            result.append(item)
        else:
            result.append(_scalar(item_text))
            pos += 1
    return result, pos


def parse_simple_yaml(text: str) -> dict:
    """Parse the block-style YAML subset the shipped specs use.

    Supports nested mappings, ``- `` item lists (scalars or mappings),
    comments, and the usual scalars.  Flow style (``{...}``/``[...]``),
    anchors, multi-line strings, and multi-document files are out of
    scope — a spec needing them should be written as a Python dict.
    """
    lines = _logical_lines(text)
    if not lines:
        return {}
    value, pos = _parse_block(lines, 0, lines[0][0])
    if pos != len(lines):
        raise SpecError(
            f"trailing unparsed YAML near {lines[pos][1]!r}")
    if not isinstance(value, dict):
        raise SpecError(f"a scenario spec must be a mapping, "
                        f"got {type(value).__name__}")
    return value


def _load_yaml(text: str) -> dict:
    try:
        import yaml
    except ImportError:
        return parse_simple_yaml(text)
    document = yaml.safe_load(text)
    if not isinstance(document, dict):
        raise SpecError(f"a scenario spec must be a mapping, "
                        f"got {type(document).__name__}")
    return document


# --------------------------------------------------------------------------
# Normalisation / validation
# --------------------------------------------------------------------------

_TOPOLOGY_DEFAULTS = {
    "kind": "sharded", "shards": 4, "m": 1 << 14, "k": 4,
    "method": "ms", "backend": "array", "hash_family": "blocked",
    "durable": False, "fsync": "checkpoint",
    "rf": 3, "read_consistency": "quorum", "write_consistency": "one",
    "eject_after": 3, "probe_every": 1 << 30,
    "breaker": None, "hedge": None, "retry_budget": None,
    "wire_latency": 0.0005, "max_retries": 3,
    "base_backoff": 0.01, "max_backoff": 0.05,
    "tenants": None, "fanout": 8,
}

_ENGINE_DEFAULTS = {
    "max_queue": 1024, "batch_size": 64, "policy": "reject_new",
    "maintenance_every": 64,
}

_KEYS_DEFAULTS = {
    "dist": "zipf", "n": 2000, "skew": 1.1,
    "hot": 8, "hot_fraction": 0.9,
}

_WORKLOAD_DEFAULTS = {
    "mix": None,              # filled below
    "arrival": None,          # filled below
    "deadline": None,
    "insert_count_max": 3,
    "absent_fraction": 0.1,
    "contains_threshold": 2,
    "bulk_size": 16,
    "bulk_fraction": 0.0,
}

_ARRIVAL_DEFAULTS = {
    "pattern": "closed", "spacing": 0.0002,
    "rate": 1000.0, "tick": 0.01, "pumps_per_tick": 1,
}

_ORACLE_DEFAULTS = {
    "audit_sample": 200,
    "min_availability": 0.0,      # float, or {phase: float}
    "max_ambiguous": None,        # None = unbounded (still reported)
    "conservation": True,
    "settle": True,
}

_PHASE_KEYS = {"name", "ops", "mix", "arrival", "deadline"}
_TOP_KEYS = {"name", "description", "seed", "topology", "engine",
             "workload", "phases", "faults", "oracle"}


def _merged(defaults: dict, given: object, what: str) -> dict:
    if given is None:
        return dict(defaults)
    if not isinstance(given, dict):
        raise SpecError(f"{what} must be a mapping, got {given!r}")
    unknown = set(given) - set(defaults)
    if unknown:
        raise SpecError(f"{what} has unknown key(s) {sorted(unknown)}; "
                        f"known: {sorted(defaults)}")
    merged = dict(defaults)
    merged.update(given)
    return merged


def _check_mix(mix: object) -> dict:
    if mix is None:
        mix = {"insert": 0.3, "query": 0.7}
    if not isinstance(mix, dict) or not mix:
        raise SpecError(f"mix must be a non-empty mapping, got {mix!r}")
    unknown = set(mix) - set(VERBS)
    if unknown:
        raise SpecError(f"mix has unknown verb(s) {sorted(unknown)}; "
                        f"known: {list(VERBS)}")
    total = sum(float(p) for p in mix.values())
    if total <= 0 or any(float(p) < 0 for p in mix.values()):
        raise SpecError(f"mix weights must be >= 0 and sum > 0: {mix!r}")
    return {verb: float(p) / total for verb, p in mix.items()}


def load_spec(source: object) -> dict:
    """Normalise a scenario document into one validated dict.

    *source* may be a dict (taken as-is), YAML text, or a path to a
    ``.yaml``/``.yml`` file.  Returns a fresh dict with every default
    applied; raises :class:`SpecError` on anything malformed.
    """
    if isinstance(source, dict):
        document = dict(source)
    elif isinstance(source, (str, os.PathLike)):
        text = str(source)
        if text.endswith((".yaml", ".yml")) or os.path.exists(text):
            with open(text, "r", encoding="utf-8") as fh:
                text = fh.read()
        document = _load_yaml(text)
    else:
        raise SpecError(f"cannot load a spec from {type(source).__name__}")

    unknown = set(document) - _TOP_KEYS
    if unknown:
        raise SpecError(f"spec has unknown key(s) {sorted(unknown)}; "
                        f"known: {sorted(_TOP_KEYS)}")
    name = document.get("name")
    if not name or not isinstance(name, str):
        raise SpecError("a scenario needs a string 'name'")

    spec: dict = {
        "name": name,
        "description": str(document.get("description", "")),
        "seed": int(document.get("seed", 0)),
    }
    topology = _merged(_TOPOLOGY_DEFAULTS, document.get("topology"),
                       "topology")
    if topology["kind"] not in TOPOLOGY_KINDS:
        raise SpecError(f"topology.kind must be one of {TOPOLOGY_KINDS}, "
                        f"got {topology['kind']!r}")
    if topology["kind"] == "single":
        topology["shards"] = 1
    if topology["kind"] == "tenants" and not topology["tenants"]:
        raise SpecError("a 'tenants' topology needs a tenants list")
    if topology["shards"] < 1:
        raise SpecError(f"topology.shards must be >= 1, "
                        f"got {topology['shards']}")
    spec["topology"] = topology
    spec["engine"] = _merged(_ENGINE_DEFAULTS, document.get("engine"),
                             "engine")
    if spec["engine"]["policy"] not in ("reject_new", "shed_oldest"):
        raise SpecError(f"engine.policy must be reject_new or shed_oldest, "
                        f"got {spec['engine']['policy']!r}")

    workload_doc = document.get("workload") or {}
    if not isinstance(workload_doc, dict):
        raise SpecError(f"workload must be a mapping, got {workload_doc!r}")
    keys = _merged(_KEYS_DEFAULTS, workload_doc.pop("keys", None),
                   "workload.keys")
    if keys["dist"] not in ("zipf", "uniform", "adversarial"):
        raise SpecError(f"workload.keys.dist must be zipf, uniform or "
                        f"adversarial, got {keys['dist']!r}")
    workload = _merged(_WORKLOAD_DEFAULTS, workload_doc, "workload")
    workload["keys"] = keys
    workload["mix"] = _check_mix(workload["mix"])
    workload["arrival"] = _merged(_ARRIVAL_DEFAULTS, workload["arrival"],
                                  "workload.arrival")
    if workload["arrival"]["pattern"] not in ("closed", "open"):
        raise SpecError(f"arrival.pattern must be closed or open, got "
                        f"{workload['arrival']['pattern']!r}")
    spec["workload"] = workload

    phases_doc = document.get("phases") or [{"name": "main", "ops": 500}]
    if not isinstance(phases_doc, list) or not phases_doc:
        raise SpecError("phases must be a non-empty list")
    phases = []
    seen_names = set()
    for i, phase in enumerate(phases_doc):
        if not isinstance(phase, dict):
            raise SpecError(f"phase {i} must be a mapping, got {phase!r}")
        unknown = set(phase) - _PHASE_KEYS
        if unknown:
            raise SpecError(f"phase {i} has unknown key(s) "
                            f"{sorted(unknown)}; known: "
                            f"{sorted(_PHASE_KEYS)}")
        entry = {
            "name": str(phase.get("name", f"phase{i}")),
            "ops": int(phase.get("ops", 0)),
            "mix": _check_mix(phase["mix"]) if phase.get("mix") is not None
            else workload["mix"],
            "arrival": _merged(workload["arrival"], phase.get("arrival"),
                               f"phase {i} arrival"),
            "deadline": phase.get("deadline", workload["deadline"]),
        }
        if entry["ops"] < 1:
            raise SpecError(f"phase {entry['name']!r} needs ops >= 1")
        if entry["name"] in seen_names:
            raise SpecError(f"duplicate phase name {entry['name']!r}")
        seen_names.add(entry["name"])
        phases.append(entry)
    spec["phases"] = phases

    faults_doc = document.get("faults") or []
    if not isinstance(faults_doc, list):
        raise SpecError("faults must be a list of events")
    spec["faults"] = [dict(event) for event in faults_doc]

    spec["oracle"] = _merged(_ORACLE_DEFAULTS, document.get("oracle"),
                             "oracle")
    return spec
