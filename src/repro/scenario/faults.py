"""The fault schedule: declarative chaos events fired mid-run.

A scenario's ``faults`` block is a list of events, each naming a trigger
and an action.  Triggers:

- ``at: <n>`` — fire just before global op ``n`` (0-based, across all
  phases);
- ``at_phase: <name>`` — fire when the named phase starts.

Actions (the chaos vocabulary, each mapped onto the real mechanism the
repo already ships — nothing here is mocked):

- ``degrade`` — install a :class:`~repro.db.faults.FaultPolicy` on wire
  channels (``drop`` / ``duplicate`` / ``corrupt`` / ``delay`` /
  ``reorder`` / ``slow`` / ``slow_seconds`` / ``latency``), scoped by
  ``shard`` / ``replica`` / ``worker`` or fleet-wide.  ``slow`` with a
  probability < 1 is the gray-failure burst;
- ``partition`` — total loss (``drop: 1.0``) on the scoped channels;
- ``heal`` — restore the scoped channels to the topology's baseline
  policy (wire latency only);
- ``kill`` / ``restart`` — hard worker death: ``SIGKILL`` + respawn on
  a procpool, full partition + heal of one shard's replicas on a
  replicated fleet;
- ``crash_recover`` — abandon a durable shard's live handle with no
  checkpoint and recover it from its WAL + snapshots in place;
- ``deadline`` — set (or with ``seconds: null`` clear) the per-op
  end-to-end deadline from this point on: deadline pressure;
- ``policy`` — swap the engine's admission policy (``reject_new`` /
  ``shed_oldest``) mid-run: overload behaviour under churn;
- ``reshard`` — start a rolling reshard to ``new_n`` shards, stepped
  every ``step_every`` ops by the runner and committed when done;
- ``mount`` / ``unmount`` — tenant lifecycle on a ``tenants`` topology.

Every event validates at schedule construction, so a misspelled action
fails the run before any traffic, not at minute nine.
"""

from __future__ import annotations

from repro.db.faults import FaultPolicy
from repro.scenario.spec import SpecError

__all__ = ["FaultSchedule"]

_POLICY_KEYS = ("drop", "duplicate", "corrupt", "delay", "reorder",
                "slow", "slow_seconds", "latency")

_SCOPE_KEYS = {"shard", "replica", "worker"}

_ACTION_KEYS = {
    "degrade": _SCOPE_KEYS | set(_POLICY_KEYS) | {"seed"},
    "partition": _SCOPE_KEYS,
    "heal": _SCOPE_KEYS,
    "kill": _SCOPE_KEYS,
    "restart": _SCOPE_KEYS,
    "crash_recover": {"shard"},
    "deadline": {"seconds"},
    "policy": {"policy"},
    "reshard": {"new_n", "step_every"},
    "mount": {"tenant"},
    "unmount": {"tenant"},
}


def _channels(topology, event: dict) -> list[tuple[str, str]]:
    """Directed (sender, recipient) pairs an event's scope covers."""
    kind = topology.kind
    if kind == "procpool":
        worker = event.get("worker", event.get("shard"))
        indices = [worker] if worker is not None \
            else range(topology.cfg["shards"])
        endpoints = [f"worker-{i}" for i in indices]
    elif kind == "replicated":
        shard = event.get("shard")
        replica = event.get("replica")
        shards = [shard] if shard is not None \
            else range(topology.cfg["shards"])
        replicas = [replica] if replica is not None \
            else range(topology.cfg["rf"])
        endpoints = [f"s{s}r{r}" for s in shards for r in replicas]
    else:
        raise SpecError(
            f"network fault on a wire-less topology {kind!r}")
    client = topology.client_name
    return ([(client, endpoint) for endpoint in endpoints]
            + [(endpoint, client) for endpoint in endpoints])


class FaultSchedule:
    """Validated fault events, fired by the runner at their triggers."""

    def __init__(self, events: list, topology):
        self._topology = topology
        self._by_phase: dict[str, list[dict]] = {}
        self._by_op: list[tuple[int, dict]] = []
        self._touched: set[tuple[str, str]] = set()
        self.fired = 0
        for index, event in enumerate(events):
            event = dict(event)
            action = event.pop("action", None)
            if action not in _ACTION_KEYS:
                raise SpecError(
                    f"fault event {index} has unknown action {action!r}; "
                    f"known: {sorted(_ACTION_KEYS)}")
            at = event.pop("at", None)
            at_phase = event.pop("at_phase", None)
            if (at is None) == (at_phase is None):
                raise SpecError(
                    f"fault event {index} needs exactly one of "
                    f"'at' (op index) or 'at_phase' (phase name)")
            unknown = set(event) - _ACTION_KEYS[action]
            if unknown:
                raise SpecError(
                    f"fault event {index} ({action}) has unknown key(s) "
                    f"{sorted(unknown)}; known: "
                    f"{sorted(_ACTION_KEYS[action])}")
            if action in ("degrade", "partition", "heal") \
                    and topology.network is None:
                raise SpecError(
                    f"fault event {index}: network fault on a wire-less "
                    f"topology {topology.kind!r}")
            if action in ("kill", "restart") \
                    and topology.kind not in ("procpool", "replicated"):
                raise SpecError(
                    f"fault event {index}: {action} needs a procpool or "
                    f"replicated topology, got {topology.kind!r}")
            event["action"] = action
            event["_index"] = index
            if at_phase is not None:
                self._by_phase.setdefault(str(at_phase), []).append(event)
            else:
                self._by_op.append((int(at), event))
        self._by_op.sort(key=lambda pair: pair[0])
        self._cursor = 0

    # -- firing ------------------------------------------------------------
    def fire_phase(self, phase_name: str, runner) -> int:
        """Fire every event pinned to *phase_name*'s start."""
        fired = 0
        for event in self._by_phase.get(phase_name, ()):
            self._apply(event, runner)
            fired += 1
        return fired

    def fire_op(self, global_index: int, runner) -> int:
        """Fire every event whose op index has come due."""
        fired = 0
        while (self._cursor < len(self._by_op)
               and self._by_op[self._cursor][0] <= global_index):
            self._apply(self._by_op[self._cursor][1], runner)
            self._cursor += 1
            fired += 1
        return fired

    def heal_all(self) -> None:
        """Restore the baseline policy on every channel any event
        degraded (the runner calls this before the settle audit)."""
        topology = self._topology
        if topology.network is None:
            return
        baseline = FaultPolicy(latency=topology.cfg["wire_latency"])
        for sender, recipient in self._touched:
            topology.network.set_policy(sender, recipient, baseline)

    # -- the actions -------------------------------------------------------
    def _apply(self, event: dict, runner) -> None:
        action = event["action"]
        topology = self._topology
        self.fired += 1
        runner.note_fault(event)
        if action in ("degrade", "partition", "heal"):
            if action == "degrade":
                params = {key: event[key] for key in _POLICY_KEYS
                          if key in event}
                params.setdefault("latency", topology.cfg["wire_latency"])
                policy = FaultPolicy(
                    seed=event.get(
                        "seed", runner.spec["seed"] + event["_index"]),
                    **params)
            elif action == "partition":
                policy = FaultPolicy(drop=1.0)
            else:
                policy = FaultPolicy(latency=topology.cfg["wire_latency"])
            for sender, recipient in _channels(topology, event):
                topology.network.set_policy(sender, recipient, policy)
                self._touched.add((sender, recipient))
            return
        if action in ("kill", "restart"):
            if topology.kind == "procpool":
                worker = event.get("worker", event.get("shard"))
                if worker is None:
                    raise SpecError(f"{action} needs a worker index")
                if action == "kill":
                    topology.pool.kill_worker(int(worker))
                else:
                    topology.pool.revive_worker(int(worker))
                return
            # Replicated: death is indistinguishable from total partition
            # at the coordinator, so that is exactly how it is injected.
            policy = FaultPolicy(drop=1.0) if action == "kill" \
                else FaultPolicy(latency=topology.cfg["wire_latency"])
            for sender, recipient in _channels(topology, event):
                topology.network.set_policy(sender, recipient, policy)
                self._touched.add((sender, recipient))
            if action == "restart":
                runner.engine.maintain()
            return
        if action == "crash_recover":
            topology.crash_recover_shard(int(event.get("shard", 0)))
            return
        if action == "deadline":
            seconds = event.get("seconds")
            runner.set_deadline(None if seconds is None
                                else float(seconds))
            return
        if action == "policy":
            runner.set_policy(event.get("policy"))
            return
        if action == "reshard":
            runner.start_reshard(int(event["new_n"]),
                                 int(event.get("step_every", 16)))
            return
        if action == "mount":
            runner.mount_tenant(event["tenant"])
            return
        if action == "unmount":
            runner.unmount_tenant(event["tenant"])
            return
        raise AssertionError(f"unreachable action {action!r}")
