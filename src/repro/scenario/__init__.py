"""Declarative chaos-scenario harness with zero-wrong-answer oracles.

The harness replays declarative workload specs through the real serving
stack — engine, routers, replica sets, process pools, the tenant
directory — while a fault schedule injects partitions, packet loss,
gray slowness, crashes, deadline pressure and topology churn, all on a
simulated clock.  A bounding-pair reference oracle referees every
answer: acknowledged state must match bit-for-bit, ambiguous writes may
only widen the envelope, and unavailability must stay inside the spec's
floors.  See DESIGN.md §13 for the schema and the oracle argument.

The package follows the config / runner / observer / aggregator split:

- :mod:`~repro.scenario.spec` — load and validate scenario documents;
- :mod:`~repro.scenario.workload` — seeded op-stream generation;
- :mod:`~repro.scenario.topology` — build the declared serving stack;
- :mod:`~repro.scenario.faults` — the fault schedule and its actions;
- :mod:`~repro.scenario.oracle` — the bounding-pair referee;
- :mod:`~repro.scenario.observer` — per-phase metrics deltas;
- :mod:`~repro.scenario.runner` — the replay loop tying it together;
- :mod:`~repro.scenario.aggregator` — results documents and baselines;
- :mod:`~repro.scenario.seeds` — the six shipped scenarios.
"""

from repro.scenario.aggregator import (aggregate, compare_to_baseline,
                                       summarize)
from repro.scenario.clock import SimClock
from repro.scenario.faults import FaultSchedule
from repro.scenario.observer import PhaseObserver
from repro.scenario.oracle import OracleChecker, OracleViolation
from repro.scenario.runner import (REPORT_VERSION, ScenarioError,
                                   ScenarioRunner, run_scenario)
from repro.scenario.seeds import SEED_NAMES, load_seed, seed_path
from repro.scenario.spec import (SpecError, load_spec, parse_simple_yaml,
                                 TOPOLOGY_KINDS, VERBS)
from repro.scenario.topology import Topology, build_topology
from repro.scenario.workload import Op, WorkloadGenerator

__all__ = [
    "SimClock", "SpecError", "load_spec", "parse_simple_yaml",
    "TOPOLOGY_KINDS", "VERBS", "Op", "WorkloadGenerator",
    "Topology", "build_topology", "FaultSchedule",
    "OracleChecker", "OracleViolation", "PhaseObserver",
    "ScenarioRunner", "ScenarioError", "run_scenario", "REPORT_VERSION",
    "aggregate", "compare_to_baseline", "summarize",
    "SEED_NAMES", "load_seed", "seed_path",
]
