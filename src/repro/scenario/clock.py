"""The scenario clock: simulated monotonic time everything shares.

A scenario is deterministic because *nothing* in it reads a wall clock:
the one :class:`SimClock` instance is handed to the metrics registry
(whose ``clock`` every serving component times against), to every
:class:`~repro.serve.resilience.Deadline`, to the circuit breakers, to
the transport's backoff ``sleep`` hook, and to the fault network's
``advance`` hook — so wire latency, gray slowness, retry backoff, and
deadline expiry all move the same simulated ``now``.  Two runs of the
same spec produce byte-identical reports.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated seconds; only explicit :meth:`advance` moves it.

    The callable form returns the current instant, matching the
    injected-clock convention (:mod:`repro.serve.metrics`), so the one
    object serves as ``clock=`` and ``advance=`` / ``sleep=`` everywhere.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"time only moves forward, got {seconds}")
        self.now += seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now:.6f})"
