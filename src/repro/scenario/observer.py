"""Phase observers: metrics scraped at every phase boundary.

The harness borrows the evaluation-harness split named in ROADMAP.md —
config / runner / observer / aggregator — and this module is the
observer leg.  A :class:`PhaseObserver` snapshots the shared
:class:`~repro.serve.metrics.MetricsRegistry` when a phase opens and
diffs it when the phase closes, so every phase record carries exactly
the counter increments, histogram mass, channel traffic and fault
injections that happened *inside* it.  Gauges are sampled (last value
wins), not diffed — a queue depth is a level, not a flow.

Deltas rather than absolutes matter because fault phases overlap
recovery phases in their effects: "retries happened" is useless,
"retries happened during the partition phase and stopped in the heal
phase" is the actual robustness claim the scenario makes.
"""

from __future__ import annotations

__all__ = ["PhaseObserver"]


def _counter_delta(before: dict, after: dict) -> dict:
    out = {}
    for name, value in after.items():
        delta = value - before.get(name, 0)
        if delta:
            out[name] = delta
    return out


def _histogram_delta(before: dict, after: dict) -> dict:
    out = {}
    for name, hist in after.items():
        prev = before.get(name)
        count = hist["count"] - (prev["count"] if prev else 0)
        if count:
            out[name] = {
                "count": count,
                "sum": round(hist["sum"] - (prev["sum"] if prev else 0.0), 9),
            }
    return out


def _channel_delta(before: dict, after: dict) -> dict:
    out = {}
    for name, stats in after.items():
        prev = before.get(name, {})
        delta = {key: value - prev.get(key, 0)
                 for key, value in stats.items()
                 if isinstance(value, (int, float))}
        delta = {key: value for key, value in delta.items() if value}
        if delta:
            out[name] = delta
    return out


class PhaseObserver:
    """Collects one record per phase from the run's shared registry.

    Usage is a strict open/close protocol per phase::

        observer.open_phase("steady", clock())
        ... run the phase ...
        record = observer.close_phase(clock(), extra={...})

    ``extra`` is the runner's own bookkeeping for the phase (op counts,
    availability, faults fired) and is merged into the record verbatim.
    """

    def __init__(self, metrics, network=None):
        self._metrics = metrics
        self._network = network
        self._open: dict | None = None
        self.records: list[dict] = []

    def open_phase(self, name: str, now: float) -> None:
        if self._open is not None:
            raise RuntimeError(
                f"phase {self._open['name']!r} is still open")
        self._open = {
            "name": name,
            "start": now,
            "snapshot": self._metrics.snapshot(),
            "faults": dict(self._network.faults) if self._network else {},
        }

    def close_phase(self, now: float, extra: dict | None = None) -> dict:
        if self._open is None:
            raise RuntimeError("no phase is open")
        opened, self._open = self._open, None
        before, after = opened["snapshot"], self._metrics.snapshot()
        record = {
            "phase": opened["name"],
            "sim_seconds": round(now - opened["start"], 9),
            "counters": _counter_delta(before["counters"],
                                       after["counters"]),
            "gauges": {name: value
                       for name, value in after["gauges"].items()},
            "histograms": _histogram_delta(before["histograms"],
                                           after["histograms"]),
            "channels": _channel_delta(before["channels"],
                                       after["channels"]),
        }
        if self._network is not None:
            record["injected_faults"] = _counter_delta(
                opened["faults"], dict(self._network.faults))
        if extra:
            record.update(extra)
        self.records.append(record)
        return record
