"""Build the serving stack a scenario runs against.

One :func:`build_topology` call turns the spec's ``topology`` block into
a live, clock-injected serving fleet on the ladder the repo grew rung by
rung:

- ``single`` — one :class:`~repro.persist.ConcurrentSBF` shard behind a
  router (the degenerate fleet; the oracle's own shape);
- ``sharded`` — :class:`~repro.serve.router.ShardedSBF` over blocked
  hashing, optionally durable (WAL + snapshots per shard), which is
  what the ``crash_recover`` and ``reshard`` fault actions need;
- ``replicated`` — :func:`~repro.serve.ha.replicated_fleet` with every
  replica behind a :class:`~repro.serve.remote.RemoteShard` over a
  :class:`~repro.db.faults.FaultyNetwork`, so partitions, packet loss
  and gray slowness are injected on the wire the real read/write paths
  cross (coordinator ``coord``, replica endpoints ``s{shard}r{replica}``);
- ``procpool`` — a :class:`~repro.serve.procpool.ProcessShardPool`; the
  ``kill``/``restart`` actions are real ``SIGKILL``/respawn;
- ``tenants`` — a :class:`~repro.tenancy.directory.TenantDirectory`
  over a :class:`~repro.tenancy.tree.SpectralBloofiTree`, the
  ``mount``/``unmount`` storm target.

Every component shares the scenario's :class:`~repro.scenario.clock.
SimClock` — through the metrics registry, the transport ``sleep``
hooks, the network ``advance`` hook, and the shard handles' lock-wait
budgets — so the whole stack moves on simulated time only.

Bit-exactness guardrail: multi-shard topologies must use blocked
hashing, the property (paper §1.1.3) that makes a routed fleet answer
counter-for-counter like one unsharded filter — without it the oracle's
zero-wrong-answer claim is unfalsifiable, so the builder refuses.
"""

from __future__ import annotations

import os

from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.persist import ConcurrentSBF, DurableSBF
from repro.serve.ha import replicated_fleet
from repro.serve.metrics import MetricsRegistry
from repro.serve.remote import RemoteShard, ShardServer
from repro.serve.router import ShardedSBF
from repro.scenario.clock import SimClock
from repro.scenario.spec import SpecError

__all__ = ["Topology", "build_topology"]


class Topology:
    """A built serving stack plus the handles fault actions reach for.

    Attributes:
        kind: the topology rung (``single`` … ``tenants``).
        router: what the :class:`~repro.serve.engine.ServingEngine`
            serves — a :class:`ShardedSBF` or a ``TenantDirectory``.
        clock / metrics: the scenario's simulated time base.
        network: the :class:`FaultyNetwork` under ``replicated`` /
            ``procpool`` fleets (``None`` for purely local ones).
        pool: the :class:`ProcessShardPool` for ``procpool`` (else
            ``None``).
        directory / tree: the tenancy objects for ``tenants``.
        tenants: the *live* tenant list (mount/unmount events mutate it;
            the workload generator draws from it).
        servers: ``{(shard, replica): ShardServer}`` for ``replicated``.
        cfg: the normalised topology block the stack was built from.
    """

    def __init__(self, kind: str, cfg: dict, clock: SimClock,
                 metrics: MetricsRegistry):
        self.kind = kind
        self.cfg = cfg
        self.clock = clock
        self.metrics = metrics
        self.router = None
        self.network: FaultyNetwork | None = None
        self.pool = None
        self.directory = None
        self.tree = None
        self.tenants: list = []
        self.servers: dict = {}
        self.workdir: str | None = None

    # -- naming ------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    def replica_endpoints(self, shard: int) -> list[str]:
        """Wire endpoint names of one logical shard's replicas."""
        if self.kind == "replicated":
            return [f"s{shard}r{r}" for r in range(self.cfg["rf"])]
        if self.kind == "procpool":
            return [f"worker-{shard}"]
        raise SpecError(f"topology {self.kind!r} has no wire endpoints")

    @property
    def client_name(self) -> str:
        return "coord" if self.kind == "replicated" else "pool"

    def filter_factory(self):
        """A zero-arg factory for a filter with the fleet's parameters
        (the reference-oracle and durable-recovery shape)."""
        cfg = self.cfg
        backend = cfg["backend"]
        if self.kind == "procpool" and backend == "array":
            backend = "numpy"

        def factory() -> SpectralBloomFilter:
            return SpectralBloomFilter(
                cfg["m"], cfg["k"], seed=cfg["seed"],
                method=cfg["method"], backend=backend,
                hash_family=cfg["hash_family"])
        return factory

    def shard_dir(self, index: int) -> str:
        if self.workdir is None:
            raise SpecError("this topology has no durable state on disk")
        return os.path.join(self.workdir, f"shard-{index}")

    def crash_recover_shard(self, index: int) -> None:
        """Simulate a crash of durable shard *index* and recover it.

        The live :class:`DurableSBF` is abandoned exactly as a killed
        process leaves it — the WAL file is released with no checkpoint,
        so recovery must replay it over the last snapshot — and a fresh
        handle recovered from disk is swapped into the router in place.
        """
        if not (self.kind in ("single", "sharded") and self.cfg["durable"]):
            raise SpecError("crash_recover needs a durable single/sharded "
                            "topology")
        old = self.router._shards[index]
        raw = old.raw
        if not isinstance(raw, DurableSBF):
            raise SpecError(f"shard {index} is not durable")
        raw.close()  # the crash: no checkpoint, recovery replays the WAL
        recovered = DurableSBF.open(self.shard_dir(index),
                                    factory=self.filter_factory(),
                                    fsync=self.cfg["fsync"])
        self.router._shards[index] = ConcurrentSBF(
            recovered, clock=self.clock)
        self.metrics.counter("scenario.crash_recoveries").inc()

    def settle(self) -> None:
        """Quiesce after the fault schedule: probe/repair replica sets so
        every replica converges before the final oracle audit."""
        for shard in self.router.shards:
            tick = getattr(shard, "tick", None)
            if callable(tick):
                tick()
            if getattr(shard, "replicas", None) is not None:
                health = shard.health()
                if any(not h["up"] or h["needs_repair"] or h["hint_depth"]
                       for h in health):
                    shard.repair()

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()


def _channel_options(cfg: dict, clock: SimClock) -> dict:
    return {"max_retries": cfg["max_retries"],
            "base_backoff": cfg["base_backoff"],
            "max_backoff": cfg["max_backoff"],
            "sleep": clock.advance}


def build_topology(spec: dict, clock: SimClock,
                   metrics: MetricsRegistry, *,
                   workdir: str | None = None) -> Topology:
    """Build the serving stack *spec* declares, wired to *clock*.

    *workdir* is required for durable topologies (each shard persists
    under ``<workdir>/shard-<i>``); a temp directory in practice.
    """
    cfg = dict(spec["topology"])
    cfg["seed"] = spec["seed"]
    kind = cfg["kind"]
    if kind not in ("single", "tenants") and cfg["shards"] > 1 \
            and cfg["hash_family"] != "blocked":
        raise SpecError(
            f"a multi-shard {kind!r} topology needs hash_family 'blocked' "
            f"for bit-exact oracle comparison, got {cfg['hash_family']!r}")
    topology = Topology(kind, cfg, clock, metrics)

    if kind in ("single", "sharded"):
        n = cfg["shards"]
        if cfg["durable"]:
            if workdir is None:
                raise SpecError("a durable topology needs a workdir")
            topology.workdir = workdir
            shards = []
            for i in range(n):
                handle = DurableSBF.open(topology.shard_dir(i),
                                         factory=topology.filter_factory(),
                                         fsync=cfg["fsync"])
                shards.append(ConcurrentSBF(handle, clock=clock))
            topology.router = ShardedSBF(shards, metrics=metrics)
        else:
            factory = topology.filter_factory()
            shards = [ConcurrentSBF(factory(), clock=clock)
                      for _ in range(n)]
            topology.router = ShardedSBF(shards, metrics=metrics)
        return topology

    if kind == "replicated":
        network = FaultyNetwork(
            FaultPolicy(latency=cfg["wire_latency"]), advance=clock.advance)
        topology.network = network
        factory = topology.filter_factory()
        options = _channel_options(cfg, clock)

        def replica_factory(s: int, r: int) -> RemoteShard:
            server = ShardServer(ConcurrentSBF(factory(), clock=clock))
            topology.servers[(s, r)] = server
            return RemoteShard(server, network, "coord", f"s{s}r{r}",
                               channel_options=dict(options),
                               metrics=metrics)

        topology.router = replicated_fleet(
            cfg["shards"], cfg["m"], cfg["k"], rf=cfg["rf"],
            seed=cfg["seed"], method=cfg["method"],
            hash_family=cfg["hash_family"],
            read_consistency=cfg["read_consistency"],
            write_consistency=cfg["write_consistency"],
            eject_after=cfg["eject_after"],
            probe_every=cfg["probe_every"],
            replica_factory=replica_factory, metrics=metrics,
            breaker=cfg["breaker"], hedge=cfg["hedge"],
            retry_budget=cfg["retry_budget"])
        return topology

    if kind == "procpool":
        from repro.serve.procpool import ProcessShardPool
        network = FaultyNetwork(
            FaultPolicy(latency=cfg["wire_latency"]), advance=clock.advance)
        topology.network = network
        backend = "numpy" if cfg["backend"] == "array" else cfg["backend"]
        topology.pool = ProcessShardPool(
            cfg["shards"], cfg["m"], cfg["k"], seed=cfg["seed"],
            method=cfg["method"], backend=backend,
            hash_family=cfg["hash_family"], network=network,
            metrics=metrics,
            channel_options=_channel_options(cfg, clock))
        topology.router = topology.pool.router
        return topology

    # tenants
    from repro.tenancy.directory import TenantDirectory
    from repro.tenancy.tree import SpectralBloofiTree
    tree = SpectralBloofiTree(cfg["m"], cfg["k"], seed=cfg["seed"],
                              hash_family=cfg["hash_family"],
                              fanout=cfg["fanout"], metrics=metrics)
    directory = TenantDirectory(tree, metrics=metrics)
    for tenant in cfg["tenants"]:
        directory.mount(tenant, method=cfg["method"])
        topology.tenants.append(tenant)
    topology.tree = tree
    topology.directory = directory
    topology.router = directory
    return topology
