"""The scenario runner: replay a spec through the real serving stack.

:class:`ScenarioRunner` is the executor leg of the harness's
config / runner / observer / aggregator split.  One :meth:`run` does,
in order:

1. build the simulated time base (:class:`~repro.scenario.clock.SimClock`
   behind a :class:`~repro.serve.metrics.MetricsRegistry`) and the
   declared topology, engine, workload generator, oracle and fault
   schedule;
2. replay each phase's op stream through the **real**
   :class:`~repro.serve.engine.ServingEngine` — closed (submit, pump,
   advance) or open (rate-driven arrivals, the queue absorbs bursts) —
   firing fault events at their declared op indices and phase starts;
3. classify every completed op (see below) and feed the oracle;
4. after the last phase: finish any in-flight reshard, heal every
   degraded channel, let replica sets repair, then run the settle
   audit and the conservation check.

**Outcome classification** is the crux of zero-wrong-answer checking
under faults.  Every write lands in exactly one bucket:

- *acked* — the future resolved; the write is durably in the fleet and
  goes into both reference filters;
- *refused* — the stack guaranteed no shard state moved: typed
  :class:`~repro.serve.engine.Overloaded` admission refusals,
  :class:`~repro.tenancy.tree.UnknownTenant`, semantic ``ValueError`` /
  ``TypeError``, and :class:`~repro.serve.resilience.DeadlineExceeded`
  carrying the ``unexecuted`` guarantee.  Touches neither reference;
- *ambiguous* — the op *may* have executed (transport gave up
  mid-flight, quorum timed out, lock abandoned):
  :class:`~repro.serve.ha.Unavailable`,
  :class:`~repro.db.transport.DeliveryFailed`,
  :class:`~repro.persist.LockTimeout`,
  :class:`~repro.serve.remote.RemoteShardError`, and executed
  ``DeadlineExceeded``.  Widens the oracle's bounding pair on the
  matching side.

Anything else raises :class:`ScenarioError` — an unclassifiable failure
is a harness bug or a stack bug, and the run must say so rather than
absorb it into "ambiguous".
"""

from __future__ import annotations

import tempfile
from collections import deque

from repro.db.transport import DeliveryFailed
from repro.persist import LockTimeout
from repro.scenario.clock import SimClock
from repro.scenario.faults import FaultSchedule
from repro.scenario.observer import PhaseObserver
from repro.scenario.oracle import (ACKED, AMBIGUOUS, REFUSED, OracleChecker,
                                   OracleViolation)
from repro.scenario.spec import SpecError, load_spec
from repro.scenario.topology import build_topology
from repro.scenario.workload import WorkloadGenerator
from repro.serve.engine import (Overloaded, ServingEngine, reject_new,
                                shed_oldest)
from repro.serve.ha import Unavailable
from repro.serve.metrics import MetricsRegistry
from repro.serve.remote import RemoteShardError
from repro.serve.resilience import DeadlineExceeded
from repro.tenancy.tree import UnknownTenant

__all__ = ["ScenarioRunner", "ScenarioError", "REPORT_VERSION",
           "run_scenario"]

#: bump when the report dict's shape changes (aggregator/baseline contract)
REPORT_VERSION = 1

_POLICIES = {"reject_new": reject_new, "shed_oldest": shed_oldest}

#: the stack promised no shard state moved (note: UnknownTenant is a
#: ValueError subclass — listed for the docs' sake)
_REFUSALS = (Overloaded, UnknownTenant, ValueError, TypeError)

#: the op may or may not have executed — the oracle must widen
_AMBIGUOUS = (Unavailable, DeliveryFailed, LockTimeout, RemoteShardError)

_UNSET = object()


class ScenarioError(RuntimeError):
    """The run failed outside the oracle's vocabulary (a harness or
    stack bug surfaced an unclassifiable exception)."""


class ScenarioRunner:
    """Replays one scenario spec and referees it; see the module doc.

    Args:
        spec_source: anything :func:`~repro.scenario.spec.load_spec`
            takes — dict, YAML text, or a path.
        workdir: directory for durable shard state.  Defaults to a
            fresh temp dir when the topology needs one.
    """

    def __init__(self, spec_source, *, workdir: str | None = None):
        self.spec = load_spec(spec_source)
        self.clock = SimClock()
        self.metrics = MetricsRegistry(clock=self.clock)
        if workdir is None and self.spec["topology"]["durable"]:
            workdir = tempfile.mkdtemp(prefix="scenario-")
        self.topology = build_topology(self.spec, self.clock, self.metrics,
                                       workdir=workdir)
        engine_cfg = self.spec["engine"]
        self.engine = ServingEngine(
            self.topology.router,
            max_queue=engine_cfg["max_queue"],
            batch_size=engine_cfg["batch_size"],
            policy=_POLICIES[engine_cfg["policy"]],
            maintenance_every=engine_cfg["maintenance_every"],
            metrics=self.metrics)
        self.generator = WorkloadGenerator(
            self.spec["workload"], self.spec["seed"],
            tenants=self.topology.tenants
            if self.topology.kind == "tenants" else None)
        self.oracle = OracleChecker(self.spec, self.topology)
        self.schedule = FaultSchedule(self.spec["faults"], self.topology)
        self.observer = PhaseObserver(self.metrics, self.topology.network)
        self.faults_log: list[dict] = []
        self.failures: list[str] = []
        self._forced_deadline: object = _UNSET
        self._reshard = None
        self._reshard_every = 16
        self._reshard_ops = 0
        self._pending: deque = deque()
        self._global_index = 0
        self._phase_stats: dict | None = None
        self._stats = {"submitted": 0, "ok": 0, "refused": 0,
                       "ambiguous": 0, "acked_writes": 0, "reads": 0}

    # -- fault-schedule callbacks (FaultSchedule._apply drives these) ------
    def note_fault(self, event: dict) -> None:
        entry = {key: value for key, value in event.items()
                 if not key.startswith("_")}
        entry["fired_at_op"] = self._global_index
        self.faults_log.append(entry)
        self.metrics.counter("scenario.faults_fired").inc()

    def set_deadline(self, seconds: float | None) -> None:
        """Runtime deadline pressure: overrides every phase's deadline
        until cleared with ``seconds: null``."""
        self._forced_deadline = _UNSET if seconds is None else seconds

    def set_policy(self, name: str) -> None:
        if name not in _POLICIES:
            raise SpecError(f"unknown admission policy {name!r}; known: "
                            f"{sorted(_POLICIES)}")
        self.engine.policy = _POLICIES[name]

    def start_reshard(self, new_n: int, step_every: int) -> None:
        if self._reshard is not None:
            raise SpecError("a reshard is already in flight")
        self._reshard = self.topology.router.start_reshard(new_n)
        self._reshard_every = max(1, step_every)
        self._reshard_ops = 0

    def mount_tenant(self, tenant: object) -> None:
        self.topology.directory.mount(
            tenant, method=self.topology.cfg["method"])
        if tenant not in self.topology.tenants:
            self.topology.tenants.append(tenant)
        self.oracle.mount_tenant(tenant)

    def unmount_tenant(self, tenant: object) -> None:
        self.topology.directory.unmount(tenant)
        if tenant in self.topology.tenants:
            self.topology.tenants.remove(tenant)
        self.generator.drop_tenant(tenant)
        self.oracle.unmount_tenant(tenant)

    # -- op lifecycle ------------------------------------------------------
    def _effective_deadline(self, phase: dict) -> float | None:
        if self._forced_deadline is not _UNSET:
            return self._forced_deadline  # type: ignore[return-value]
        return phase["deadline"]

    def _submit(self, op, deadline: float | None) -> None:
        self._stats["submitted"] += 1
        self._phase_stats["submitted"] += 1
        try:
            future = self.engine.submit(*op.as_submit_args(),
                                        timeout=deadline)
        except Overloaded as exc:
            self._record_failure(op, exc)
            return
        self._pending.append((op, future))

    def _resolve_pending(self) -> None:
        # Completion order is a prefix of submission order: the queue
        # pops batches from the front and shedding evicts the oldest,
        # so a done future never hides behind a pending one.
        while self._pending and self._pending[0][1].done():
            op, future = self._pending.popleft()
            exc = future.exception()
            if exc is None:
                self._record_success(op, future.result())
            else:
                self._record_failure(op, exc)

    def _record_success(self, op, value) -> None:
        self._stats["ok"] += 1
        self._phase_stats["ok"] += 1
        if op.verb in ("query", "contains"):
            self._stats["reads"] += 1
            self.oracle.check_read(op, value)
        else:
            self._stats["acked_writes"] += 1
            self.oracle.note_write(op, ACKED)
            self.generator.note_acked(op)

    def _classify(self, exc: BaseException) -> str:
        if isinstance(exc, DeadlineExceeded):
            return REFUSED if getattr(exc, "unexecuted", False) \
                else AMBIGUOUS
        if isinstance(exc, _AMBIGUOUS):
            return AMBIGUOUS
        if isinstance(exc, _REFUSALS):
            return REFUSED
        raise ScenarioError(
            f"unclassifiable failure {type(exc).__name__}: {exc}") from exc

    def _record_failure(self, op, exc: BaseException) -> None:
        outcome = self._classify(exc)
        self._stats[outcome] += 1
        self._phase_stats[outcome] += 1
        if op.verb in ("insert", "delete"):
            self.oracle.note_write(op, outcome)

    def _maybe_step_reshard(self) -> None:
        if self._reshard is None:
            return
        self._reshard_ops += 1
        if self._reshard_ops % self._reshard_every:
            return
        if self._reshard.done:
            self._reshard.commit()
            self._reshard = None
        else:
            self._reshard.step()

    def _finish_reshard(self) -> None:
        if self._reshard is not None:
            while not self._reshard.done:
                self._reshard.step()
            self._reshard.commit()
            self._reshard = None

    # -- the traffic loops -------------------------------------------------
    def _run_closed(self, phase: dict) -> None:
        spacing = phase["arrival"]["spacing"]
        for _ in range(phase["ops"]):
            self.schedule.fire_op(self._global_index, self)
            op = self.generator.next_op(phase["mix"])
            self._submit(op, self._effective_deadline(phase))
            self._global_index += 1
            self.engine.pump()
            self._resolve_pending()
            self.clock.advance(spacing)
            self._maybe_step_reshard()

    def _run_open(self, phase: dict) -> None:
        arrival = phase["arrival"]
        interval = 1.0 / float(arrival["rate"])
        tick = float(arrival["tick"])
        pumps = int(arrival["pumps_per_tick"])
        next_arrival = self.clock.now
        submitted = 0
        while submitted < phase["ops"]:
            while submitted < phase["ops"] \
                    and next_arrival <= self.clock.now + 1e-12:
                self.schedule.fire_op(self._global_index, self)
                op = self.generator.next_op(phase["mix"])
                self._submit(op, self._effective_deadline(phase))
                self._global_index += 1
                submitted += 1
                next_arrival += interval
                self._maybe_step_reshard()
            for _ in range(pumps):
                self.engine.pump()
            self._resolve_pending()
            self.clock.advance(tick)

    def _availability_floor(self, phase_name: str) -> float:
        floor = self.spec["oracle"]["min_availability"]
        if isinstance(floor, dict):
            return float(floor.get(phase_name, 0.0))
        return float(floor)

    # -- the run -----------------------------------------------------------
    def run(self, *, strict: bool = True) -> dict:
        """Execute the scenario; returns the versioned report dict.

        With *strict* (the default) any oracle violation, availability
        breach or conservation failure raises; with ``strict=False`` the
        report carries ``pass: false`` and a ``failures`` list instead.
        """
        try:
            report = self._run()
        finally:
            self.topology.close()
        if strict and not report["pass"]:
            raise OracleViolation("; ".join(report["failures"]))
        return report

    def _run(self) -> dict:
        availability: dict[str, float] = {}
        for phase in self.spec["phases"]:
            self.schedule.fire_phase(phase["name"], self)
            self.observer.open_phase(phase["name"], self.clock.now)
            self._phase_stats = {"submitted": 0, "ok": 0, "refused": 0,
                                 "ambiguous": 0}
            if phase["arrival"]["pattern"] == "closed":
                self._run_closed(phase)
            else:
                self._run_open(phase)
            self.engine.drain()
            self._resolve_pending()
            stats = self._phase_stats
            phase_availability = stats["ok"] / stats["submitted"] \
                if stats["submitted"] else 1.0
            availability[phase["name"]] = round(phase_availability, 6)
            floor = self._availability_floor(phase["name"])
            if phase_availability < floor:
                self.failures.append(
                    f"phase {phase['name']!r} availability "
                    f"{phase_availability:.4f} below floor {floor:.4f}")
            self.observer.close_phase(self.clock.now, extra={
                "ops": dict(stats),
                "availability": availability[phase["name"]],
            })
        assert not self._pending, "unresolved futures after drain"

        self._finish_reshard()
        self.schedule.heal_all()
        oracle_cfg = self.spec["oracle"]
        audit_checked = 0
        if oracle_cfg["settle"]:
            self.topology.settle()
            self.engine.maintain()
            audit_checked = self._settle_audit()
        conservation = self.oracle.check_conservation() \
            if oracle_cfg["conservation"] else None

        try:
            self.oracle.assert_clean()
        except OracleViolation as exc:
            self.failures.append(str(exc))
        report = {
            "version": REPORT_VERSION,
            "name": self.spec["name"],
            "description": self.spec["description"],
            "seed": self.spec["seed"],
            "topology": {
                "kind": self.topology.kind,
                "shards": self.topology.cfg["shards"],
                "rf": self.topology.cfg["rf"]
                if self.topology.kind == "replicated" else None,
                "durable": self.topology.cfg["durable"],
            },
            "sim_seconds": round(self.clock.now, 9),
            "ops": dict(self._stats),
            "availability": availability,
            "phases": self.observer.records,
            "faults_fired": self.schedule.fired,
            "faults": self.faults_log,
            "oracle": self.oracle.report(),
            "audit_checked": audit_checked,
            "conservation": conservation,
            "failures": list(self.failures),
        }
        report["pass"] = not self.failures
        return report

    def _settle_audit(self) -> int:
        """Re-query a deterministic sample of acknowledged keys (plus a
        few definite misses) through the healed fleet."""
        sample = int(self.spec["oracle"]["audit_sample"])
        keys = list(self.generator.live_sample(sample))
        if self.topology.kind == "tenants":
            live = set(self.topology.tenants)
            keys = [key for key in keys if key[0] in live]
            if live:
                anchor = sorted(live, key=repr)[0]
                keys += [(anchor, f"miss:audit:{i}") for i in range(8)]
        else:
            keys += [f"miss:audit:{i}" for i in range(8)]

        def query_fn(key):
            future = self.engine.submit("query", key)
            self.engine.drain()
            exc = future.exception()
            if exc is not None:
                raise ScenarioError(
                    f"settle audit query failed after healing: "
                    f"{type(exc).__name__}: {exc}") from exc
            return future.result()

        return self.oracle.audit(keys, query_fn)


def run_scenario(spec_source, *, strict: bool = True,
                 workdir: str | None = None) -> dict:
    """One-call convenience: build a runner, run it, return the report."""
    return ScenarioRunner(spec_source, workdir=workdir).run(strict=strict)
