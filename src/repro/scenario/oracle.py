"""Zero-wrong-answer oracles: the bit-exact referee of every scenario.

The spectral filter's exactness guarantees make a chaos harness
falsifiable in a way liveness checks never are: blocked-hash routing is
*bit-identical* to one unsharded filter (router module docstring), so a
reference filter replaying the same op stream must agree with the fleet
answer for answer.  The one wrinkle is **write ambiguity**: under
faults, a write can fail in a way that leaves it unknown whether shard
state moved (the transport gave up mid-flight, a quorum write applied
on one replica and timed out overall).  A single reference cannot model
that — so the oracle keeps a **bounding pair**:

- ``lower`` holds every *acknowledged* write and every *ambiguous
  delete* (the delete may have applied, so the floor must assume it
  did);
- ``upper`` holds every acknowledged write and every *ambiguous insert*
  (the insert may have applied, so the ceiling must assume it did).

Counter-wise, the fleet's vector is then provably pinched:
``lower[c] <= fleet[c] <= upper[c]`` for every counter ``c`` — acked
writes are in all three, each ambiguous insert adds to ``fleet`` at
most what it adds to ``upper``, each ambiguous delete removes at most
what it removes from ``lower``.  Minimum Selection queries are monotone
in the counters (a min), so every fleet answer must fall in
``[lower.query(key), upper.query(key)]`` — and the moment no ambiguity
is outstanding the pair coincides and the check degenerates to strict
bit-equality.  (The monotonicity step is MS-specific, which is why the
oracle refuses other methods.)

Clean refusals — :class:`~repro.serve.engine.Overloaded`, semantic
``ValueError``/``TypeError``, :class:`~repro.tenancy.tree.UnknownTenant`,
and :class:`~repro.serve.resilience.DeadlineExceeded` with the
``unexecuted`` guarantee — touch neither reference: the stack promised
the op never reached a shard, and the oracle holds it to that promise.

On top of the per-answer check the oracle asserts two whole-run
invariants: **counter conservation** (the fleet's ``total_count`` must
sit inside the pair's totals — no acknowledged op lost, none double
counted) and **bounded unavailability** (per-phase availability floors
from the spec).
"""

from __future__ import annotations

from repro.core.sbf import SpectralBloomFilter
from repro.scenario.spec import SpecError

__all__ = ["OracleChecker", "OracleViolation",
            "ACKED", "REFUSED", "AMBIGUOUS"]

#: write outcomes the runner classifies (see ScenarioRunner._classify)
ACKED = "acked"
REFUSED = "refused"
AMBIGUOUS = "ambiguous"


class OracleViolation(AssertionError):
    """The fleet returned an answer the reference pair cannot explain."""


def _check_hint_soundness(spec: dict, topology) -> None:
    """Refuse replicated specs where hinted handoff can double-apply.

    With ``write_consistency`` below ``all``, a write can be *acked*
    while some replica's response frame was merely lost — the replica
    applied the op, the coordinator counted it missed and hinted it, and
    the hint replays the op on a replica that already holds it
    (at-least-once delivery).  The fleet then exceeds the oracle's upper
    bound on that replica even though every client-visible outcome was
    clean.  That can only happen when something can lose a frame or
    abandon an in-flight write, so: ``replicated`` + partial write
    consistency + (loss faults or deadlines) is rejected up front —
    declare ``write_consistency: all`` (partial writes become typed
    :class:`~repro.serve.ha.Unavailable`, which the envelope covers) or
    drop the lossy events.
    """
    if topology.kind != "replicated" \
            or topology.cfg["write_consistency"] == "all":
        return
    lossy = [event for event in spec["faults"]
             if event.get("action") in ("partition", "kill")
             or any(event.get(key) for key in ("drop", "corrupt"))]
    deadline = (spec["workload"]["deadline"] is not None
                or any(phase["deadline"] is not None
                       for phase in spec["phases"])
                or any(event.get("action") == "deadline"
                       and event.get("seconds")
                       for event in spec["faults"]))
    if lossy or deadline:
        cause = "loss-injecting fault events" if lossy \
            else "end-to-end deadlines"
        raise SpecError(
            f"a replicated topology with write_consistency "
            f"{topology.cfg['write_consistency']!r} and {cause} can "
            f"double-apply acked writes through hinted handoff, which "
            f"the oracle envelope cannot bound; declare "
            f"write_consistency: all or remove the lossy events")


class _ReferencePair:
    """Lower/upper reference filters for one keyspace (fleet or tenant)."""

    __slots__ = ("lower", "upper")

    def __init__(self, factory):
        self.lower: SpectralBloomFilter = factory()
        self.upper: SpectralBloomFilter = factory()

    def apply(self, verb: str, key: object, count: int,
              outcome: str) -> None:
        if outcome == ACKED:
            getattr(self.lower, verb)(key, count)
            getattr(self.upper, verb)(key, count)
        elif outcome == AMBIGUOUS:
            # May or may not have landed: the insert raises only the
            # ceiling, the delete only lowers the floor.
            if verb == "insert":
                self.upper.insert(key, count)
            else:
                self.lower.delete(key, count)

    def bounds(self, key: object) -> tuple[int, int]:
        return self.lower.query(key), self.upper.query(key)

    @property
    def exact(self) -> bool:
        """True when no outstanding ambiguity separates the pair."""
        return self.lower.total_count == self.upper.total_count


class OracleChecker:
    """Replays the acknowledged op stream and referees every answer.

    One instance per run.  The runner feeds it two calls:
    :meth:`note_write` with the classified outcome of each mutation, and
    :meth:`check_read` with each successful read's value — both in
    submission order, which per-key equals the fleet's execution order
    (FIFO queue + blocked routing), so the reference state at each read
    is exactly the state the fleet answered from.
    """

    def __init__(self, spec: dict, topology):
        cfg = topology.cfg
        if cfg["method"] != "ms":
            raise SpecError(
                "the oracle's bounding argument needs Minimum Selection "
                f"(queries monotone in the counters); got method "
                f"{cfg['method']!r}")
        _check_hint_soundness(spec, topology)
        self._spec = spec
        self._topology = topology
        self._factory = self._reference_factory()
        self._pairs: dict[object, _ReferencePair] = {}
        if topology.kind != "tenants":
            self._pairs[None] = _ReferencePair(self._factory)
        else:
            for tenant in topology.tenants:
                self._pairs[tenant] = _ReferencePair(self._factory)
        self.compared = 0
        self.exact_compared = 0
        self.ambiguous_writes = 0
        self.violations: list[dict] = []

    def _reference_factory(self):
        cfg = self._topology.cfg
        if self._topology.kind == "tenants":
            # Match the tree leaf's construction (tree.mount defaults):
            # same (m, k, seed, family), numpy backend.
            def factory() -> SpectralBloomFilter:
                return SpectralBloomFilter(
                    cfg["m"], cfg["k"], seed=cfg["seed"],
                    method=cfg["method"], backend="numpy",
                    hash_family=cfg["hash_family"])
            return factory
        return self._topology.filter_factory()

    def _pair_for(self, key: object) -> tuple[_ReferencePair, object]:
        if self._topology.kind != "tenants":
            return self._pairs[None], key
        tenant, plain = key
        pair = self._pairs.get(tenant)
        if pair is None:
            raise OracleViolation(
                f"the fleet acknowledged an op for unmounted tenant "
                f"{tenant!r}")
        return pair, plain

    # -- tenant lifecycle (mirrors the fault schedule) ---------------------
    def mount_tenant(self, tenant: object) -> None:
        """A (re)mounted tenant starts from an empty leaf — so does its
        reference pair."""
        self._pairs[tenant] = _ReferencePair(self._factory)

    def unmount_tenant(self, tenant: object) -> None:
        self._pairs.pop(tenant, None)

    # -- the two referee calls --------------------------------------------
    def note_write(self, op, outcome: str) -> None:
        if outcome == REFUSED:
            return
        if outcome == AMBIGUOUS:
            self.ambiguous_writes += 1
        pair, key = self._pair_for(op.key)
        pair.apply(op.verb, key, op.count, outcome)

    def check_read(self, op, value) -> None:
        pair, key = self._pair_for(op.key)
        low, high = pair.bounds(key)
        if op.verb == "contains":
            expected_low = low >= op.threshold
            expected_high = high >= op.threshold
            ok = expected_low <= bool(value) <= expected_high
        else:
            ok = low <= int(value) <= high
        self.compared += 1
        if low == high:
            self.exact_compared += 1
        if not ok:
            self.violations.append({
                "key": repr(op.key), "verb": op.verb,
                "answer": int(value) if op.verb != "contains"
                else bool(value),
                "lower": low, "upper": high})

    # -- whole-run invariants ----------------------------------------------
    def check_conservation(self) -> dict:
        """Fleet ``total_count`` must sit inside the pair's totals."""
        lower_total = sum(p.lower.total_count for p in self._pairs.values())
        upper_total = sum(p.upper.total_count for p in self._pairs.values())
        fleet_total = self._topology.router.total_count
        ok = lower_total <= fleet_total <= upper_total
        if not ok:
            self.violations.append({
                "invariant": "conservation", "fleet_total": fleet_total,
                "lower": lower_total, "upper": upper_total})
        return {"lower": lower_total, "upper": upper_total,
                "fleet": fleet_total, "ok": ok,
                "exact": lower_total == upper_total
                and fleet_total == lower_total}

    def audit_keys(self) -> list:
        """A deterministic sample of keys worth re-querying at settle:
        the heaviest acknowledged keys of each keyspace (plus their
        tenant prefix where applicable)."""
        sample = int(self._spec["oracle"]["audit_sample"])
        keys: list = []
        for tenant, pair in self._pairs.items():
            # The pair cannot enumerate keys (it is a filter), so the
            # runner supplies them; this hook exists for the runner's
            # generator-tracked key set to be filtered per tenant.
            del pair
        return keys[:sample]

    def audit(self, keys, query_fn) -> int:
        """Re-query *keys* through *query_fn* and referee each answer.

        The settle audit: after the schedule heals and replicas
        converge, every sampled answer must sit in (usually: equal) its
        reference bounds.  Returns how many keys were checked.
        """
        checked = 0
        for key in keys:
            pair, plain = self._pair_for(key)
            low, high = pair.bounds(plain)
            value = query_fn(key)
            if value is None:
                continue
            checked += 1
            self.compared += 1
            if low == high:
                self.exact_compared += 1
            if not low <= int(value) <= high:
                self.violations.append({
                    "key": repr(key), "verb": "audit",
                    "answer": int(value), "lower": low, "upper": high})
        return checked

    def report(self) -> dict:
        return {
            "compared": self.compared,
            "exact_compared": self.exact_compared,
            "ambiguous_writes": self.ambiguous_writes,
            "wrong_answers": len(self.violations),
            "violations": self.violations[:20],
        }

    def assert_clean(self) -> None:
        if self.violations:
            first = self.violations[0]
            raise OracleViolation(
                f"{len(self.violations)} oracle violation(s); first: "
                f"{first}")
        maximum = self._spec["oracle"]["max_ambiguous"]
        if maximum is not None and self.ambiguous_writes > maximum:
            raise OracleViolation(
                f"{self.ambiguous_writes} ambiguous writes exceed the "
                f"spec bound {maximum}")
