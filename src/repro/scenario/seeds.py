"""The six seed scenarios shipped with the harness.

Each seed is a YAML spec under ``specs/`` exercising one application
shape from the paper on one rung of the serving ladder, with a fault
schedule aimed at that rung's weak point:

=======================  ==========  =======================================
seed                     topology    chaos
=======================  ==========  =======================================
cdn_hot_objects          replicated  gray slowness burst, open arrivals
iceberg_alerting         durable     crash-WAL recovery + deadline pressure
rate_limiter             procpool    worker SIGKILL + respawn
bloomjoin_packet_loss    replicated  packet loss + duplication on one shard
rolling_reshard_churn    sharded     live reshard 4 -> 6 + policy swap
tenant_storm             tenants     mount/unmount storm
=======================  ==========  =======================================

:func:`load_seed` returns the normalised spec; ``quick=True`` scales
every phase down by :data:`QUICK_FACTOR` for CI, remapping each fault's
``at`` index proportionally *within its phase* (so events keep firing
in the same phase at the same relative point) and shrinking reshard
step cadence to match.
"""

from __future__ import annotations

import copy
import os

from repro.scenario.spec import SpecError, load_spec

__all__ = ["SEED_NAMES", "QUICK_FACTOR", "seed_path", "load_seed"]

SEED_NAMES = ("cdn_hot_objects", "iceberg_alerting", "rate_limiter",
              "bloomjoin_packet_loss", "rolling_reshard_churn",
              "tenant_storm")

#: quick mode divides every phase's op count by this (floor 50 ops)
QUICK_FACTOR = 4
_QUICK_FLOOR = 50

_SPEC_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "specs")


def seed_path(name: str) -> str:
    """Absolute path of a seed's YAML file."""
    if name not in SEED_NAMES:
        raise SpecError(f"unknown seed scenario {name!r}; "
                        f"known: {list(SEED_NAMES)}")
    return os.path.join(_SPEC_DIR, f"{name}.yaml")


def _quick_scaled(spec: dict) -> dict:
    spec = copy.deepcopy(spec)
    old_ops = [phase["ops"] for phase in spec["phases"]]
    new_ops = [max(_QUICK_FLOOR, ops // QUICK_FACTOR) for ops in old_ops]
    old_starts, new_starts = [0], [0]
    for old, new in zip(old_ops, new_ops):
        old_starts.append(old_starts[-1] + old)
        new_starts.append(new_starts[-1] + new)
    for phase, ops in zip(spec["phases"], new_ops):
        phase["ops"] = ops
    for event in spec["faults"]:
        if "at" in event and event["at"] is not None:
            at = int(event["at"])
            # Last phase containing (or preceding) the index.
            p = max(0, min(len(old_ops) - 1,
                           sum(1 for s in old_starts[1:] if s <= at)))
            offset = min(at - old_starts[p], old_ops[p])
            event["at"] = new_starts[p] + offset * new_ops[p] // old_ops[p]
        if "step_every" in event and event["step_every"] is not None:
            event["step_every"] = max(
                1, int(event["step_every"]) // QUICK_FACTOR)
    return spec


def load_seed(name: str, *, quick: bool = False) -> dict:
    """Load one seed scenario as a normalised spec dict."""
    spec = load_spec(seed_path(name))
    if quick:
        # The scaled dict re-validates through load_spec: scaling must
        # never produce a spec the runner would not accept from a user.
        spec = load_spec(_quick_scaled(spec))
    return spec
