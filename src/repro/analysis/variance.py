"""Variance analysis of the unbiased estimator (paper §3.1.1).

The error on one counter is binomial, so its variance roughly equals the
expected error size: ``Var(e_x^j) ~= (N - f_x) k / m``.  §3.1.1 analyses
the classic [AMS99] remedy — average k1 counters per group, take the
median of k2 groups — and concludes it is impractical per-query:

- Chebyshev wants ``N k / (m t^2 k1) = 1/4``, giving the group size
  ``k1 = 4 N k / (m t^2)``;
- Chernoff on the median then wants ``k2 = 24 ln(1/eps)`` groups for
  failure probability eps ("for error of 0.1, this gives a k2 of 55 which
  is not very practical");
- with ``k1 >= 1`` forced, ``N`` cannot exceed ``m t^2 / (4k) * k``…
  i.e. "if we allow t = 4, N cannot exceed 4m".

These closed forms are implemented verbatim so the impracticality claims
become executable assertions.
"""

from __future__ import annotations

import math


def counter_error_variance(total: int, fx: int, k: int, m: int) -> float:
    """``Var(e_x^j) ~= (N - f_x) * k / m`` — §3.1.1's starting point."""
    if m <= 0 or k <= 0:
        raise ValueError("m and k must be positive")
    if total < fx:
        raise ValueError("total multiplicity cannot be below f_x")
    return (total - fx) * k / m


def required_group_size(total: int, k: int, m: int, t: float) -> float:
    """Group size ``k1`` making the Chebyshev bound 1/4 at distance *t*.

    From ``N k / (m t^2 k1) = 1/4``: ``k1 = 4 N k / (m t^2)``.
    """
    if t <= 0:
        raise ValueError(f"t must be positive, got {t}")
    if m <= 0 or k <= 0:
        raise ValueError("m and k must be positive")
    return 4.0 * total * k / (m * t * t)


def required_groups(epsilon: float) -> int:
    """Number of groups ``k2 = 24 ln(1/eps)`` for failure prob. *epsilon*.

    The paper's example: eps = 0.1 -> k2 = 55.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    return math.ceil(24.0 * math.log(1.0 / epsilon))


def max_supported_total(m: int, t: float) -> float:
    """Largest ``N`` for which boosting is feasible at distance *t*.

    §3.1.1: feasibility needs ``4N/(m t^2) < 1``, so ``N < m t^2 / 4`` —
    "if, for example, we allow t = 4, N cannot exceed 4m".
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if t <= 0:
        raise ValueError(f"t must be positive, got {t}")
    return m * t * t / 4.0


def median_failure_probability(k2: int) -> float:
    """Chernoff bound on the median missing: ``exp(-k2 / 24)`` (§3.1.1)."""
    if k2 < 1:
        raise ValueError(f"k2 must be >= 1, got {k2}")
    return math.exp(-k2 / 24.0)


def boosting_is_practical(total: int, k: int, m: int, *, t: float = 4.0,
                          epsilon: float = 0.1) -> bool:
    """Can the §3.1.1 boost run with the filter's actual k?

    Needs ``k1 * k2 <= k`` — which, as the section demonstrates, fails for
    any realistic configuration (k is 4-8, k2 alone is ~55).
    """
    k1 = required_group_size(total, k, m, t)
    k2 = required_groups(epsilon)
    return max(1.0, k1) * k2 <= k
