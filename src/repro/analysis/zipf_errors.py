"""The §2.3 relative-error analysis for Zipfian data.

All results condition on a Bloom error having occurred and quantify how big
the resulting over-estimate is, for data with ``n`` distinct items whose
frequencies follow ``f_i ∝ 1/i^z`` (rank ``i`` starting at 1):

- Equation (1): the expected relative error of the rank-``i`` item is
  bounded by ``E'(RE_i^z) = i^z * k / (n-k)^k * S_z`` with
  ``S_z = sum_j j^(k-z-1)`` — the curves of Figure 1;
- Equation (2): averaging over all ranks gives
  ``E(RE^z) < k (n+1)^(k+1) / (n (k-z)(z+1)(n-k)^k)``, minimised at
  ``z_min = (k+1)/2``;
- the tail bound ``P(RE_i > T) <= k (i / ((n-k) T^(1/z)))^k``;
- the double-stepover probability ``E' ~= 1 - e^(-gamma)(1 + gamma*m/(m-1))``
  justifying the single-contaminator assumption.
"""

from __future__ import annotations

import math


def _s_z(n: int, k: int, z: float) -> float:
    """``S_z = sum_{j=1..n} j^(k-z-1)`` (computed exactly)."""
    exponent = k - z - 1
    return sum(j ** exponent for j in range(1, n + 1))


def expected_relative_error(i: int, n: int, k: int, z: float) -> float:
    """Equation (1)'s bound ``E'(RE_i^z)`` for the rank-*i* item (1-based).

    This is the quantity plotted in Figure 1 (n = 10 000, k = 5, skews
    0.2-2): monotonically rising in *i*, with the high-skew curves starting
    lower but crossing above the low-skew ones for rare items.
    """
    if not 1 <= i <= n:
        raise ValueError(f"rank i must be in [1, n], got {i}")
    if k >= n:
        raise ValueError(f"need k < n, got k={k}, n={n}")
    if z < 0:
        raise ValueError(f"skew must be >= 0, got {z}")
    return (i ** z) * k / ((n - k) ** k) * _s_z(n, k, z)


def expected_relative_error_all_items(n: int, k: int, z: float) -> float:
    """Equation (2): the bound on the rank-averaged expected relative error.

    Valid for ``z < k`` (the derivation integrates ``j^(k-z-1)`` upward).
    """
    if z >= k:
        raise ValueError(f"the closed form needs z < k, got z={z}, k={k}")
    if k >= n:
        raise ValueError(f"need k < n, got k={k}, n={n}")
    return (k * (n + 1) ** (k + 1)
            / (n * (k - z) * (z + 1) * (n - k) ** k))


def optimal_skew(k: int) -> float:
    """The skew actually minimising Equation (2): ``z_min = (k-1)/2``.

    Erratum note: §2.3 states the minimum is at ``(k+1)/2``, but the bound
    is ``∝ 1/((k-z)(z+1))`` and ``(k-z)(z+1)`` peaks at ``z = (k-1)/2``
    (set the derivative ``k - 2z - 1`` to zero).  The paper's *minimal
    value* expression ``4k(n+1)^(k+1) / (n (n-k)^k (k-1)(k+3))`` is the
    bound evaluated at its claimed ``(k+1)/2`` — see
    :func:`paper_optimal_skew` — and is therefore slightly above the true
    minimum.  Both are exposed; the benchmark records the discrepancy.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return (k - 1) / 2


def paper_optimal_skew(k: int) -> float:
    """The minimiser as *stated* in §2.3: ``z_min = (k+1)/2`` (see the
    erratum note on :func:`optimal_skew`)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return (k + 1) / 2


def relative_error_tail_probability(i: int, n: int, k: int, z: float,
                                    threshold: float) -> float:
    """``P(RE_i > T) <= k * (i / ((n-k) T^(1/z)))^k`` (§2.3, final result).

    The paper's worked example: n = 1000, k = 5, z = 1, T = 0.5 gives
    ``5 * (i / 497.5)^5`` — exceeding 1 (i.e. vacuous) for i > 360.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if z <= 0:
        raise ValueError(f"the tail bound needs z > 0, got {z}")
    if not 1 <= i <= n:
        raise ValueError(f"rank i must be in [1, n], got {i}")
    return k * (i / ((n - k) * threshold ** (1.0 / z))) ** k


def double_stepover_probability(g: float, m: int, k: int) -> float:
    """Probability an erroneous item has a doubly-stepped-on counter (§2.3).

    ``E' ~= 1 - e^(-gamma) (1 + gamma*m/(m-1))`` is the probability a single
    counter receives two or more foreign items; the event of interest —
    a Bloom error whose minimal counter is doubly contaminated — has
    probability ``E' * (1 - e^(-gamma))^(k-1)``, "less than 1%" for
    gamma = 0.7, k = 5, justifying the single-contaminator assumption.
    """
    if m <= 1:
        raise ValueError(f"m must be > 1, got {m}")
    if g < 0:
        raise ValueError(f"gamma must be >= 0, got {g}")
    single = max(0.0, 1.0 - math.exp(-g) * (1.0 + g * m / (m - 1)))
    return single * (1.0 - math.exp(-g)) ** (k - 1)


def figure1_curves(n: int = 10_000, k: int = 5,
                   skews: tuple[float, ...] = (0.2, 0.6, 1.0, 1.4, 1.8, 2.0),
                   points: int = 40) -> dict[float, list[tuple[int, float]]]:
    """The Figure 1 data: ``{skew: [(rank, E'(RE)), ...]}``.

    Ranks are sampled on an even grid of *points* positions across 1..n.
    """
    ranks = [max(1, round(j * n / points)) for j in range(1, points + 1)]
    return {
        z: [(i, expected_relative_error(i, n, k, z)) for i in ranks]
        for z in skews
    }
