"""Closed-form error analyses from the paper.

- :mod:`repro.analysis.bloom_math` re-exports the §2.1 parameter math;
- :mod:`repro.analysis.zipf_errors` — the §2.3 relative-error analysis for
  Zipfian data (Equations (1)-(2), Figure 1, the tail bound and the
  double-stepover probability);
- :mod:`repro.analysis.iceberg_math` — the §5.2 iceberg error-rate model
  behind Figure 4.
"""

from repro.analysis.bloom_math import (
    bloom_error,
    bloom_error_from_gamma,
    gamma,
    optimal_k,
)
from repro.analysis.zipf_errors import (
    double_stepover_probability,
    expected_relative_error,
    expected_relative_error_all_items,
    optimal_skew,
    relative_error_tail_probability,
)
from repro.analysis.iceberg_math import iceberg_error_rate
from repro.analysis.variance import (
    boosting_is_practical,
    counter_error_variance,
    max_supported_total,
    required_group_size,
    required_groups,
)
from repro.analysis.compressed import (
    best_configuration,
    compressed_size,
)

__all__ = [
    "bloom_error",
    "bloom_error_from_gamma",
    "gamma",
    "optimal_k",
    "expected_relative_error",
    "expected_relative_error_all_items",
    "relative_error_tail_probability",
    "double_stepover_probability",
    "optimal_skew",
    "iceberg_error_rate",
    "counter_error_variance",
    "required_group_size",
    "required_groups",
    "max_supported_total",
    "boosting_is_practical",
    "best_configuration",
    "compressed_size",
]
