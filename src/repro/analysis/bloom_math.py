"""§2.1 Bloom parameter math, re-exported for the analysis namespace.

The actual implementations live in :mod:`repro.core.params`; the analysis
package exposes them alongside the §2.3/§5.2 models so experiment code has
one import site for every closed form in the paper.
"""

from repro.core.params import (  # noqa: F401 - re-exports
    bloom_error,
    bloom_error_from_gamma,
    gamma,
    m_for_gamma,
    optimal_k,
    optimal_m,
)

__all__ = [
    "bloom_error",
    "bloom_error_from_gamma",
    "gamma",
    "m_for_gamma",
    "optimal_k",
    "optimal_m",
]
