"""The §5.2 iceberg-query error model (Figure 4).

For an iceberg query with threshold ``T``, a false positive needs an item of
frequency ``f' < T`` to be stepped over by items large enough to push it
past the threshold.  With ``d(f)`` the fraction of items having frequency
``f`` and ``D_{f'} = n * sum_{i >= T - f'} d(i)`` the number of sufficiently
heavy contaminators, the per-frequency error rate is the Bloom error of a
filter containing only those heavy items::

    E_{f'} ~= (1 - e^(-k D_{f'} / m))^k

and the total error rate is ``E = sum_{f=0}^{T-1} d(f) E_f``.  Figure 4
plots this for Zipfian skews 0-1.2 at k = 5, gamma = 1: the curve rises for
small T, peaks, then falls — fewer contaminators are heavy enough as T
grows, even though more items sit below the threshold.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping


def frequency_histogram(counts: Mapping[object, int]) -> dict[int, float]:
    """``d(f)``: fraction of distinct items having frequency ``f``."""
    if not counts:
        raise ValueError("counts must be non-empty")
    histogram = Counter(counts.values())
    n = len(counts)
    return {f: c / n for f, c in histogram.items()}


def iceberg_error_rate(counts: Mapping[object, int], threshold: int,
                       m: int, k: int) -> float:
    """Expected false-positive rate of an SBF iceberg query (§5.2).

    Args:
        counts: the data multiset ``{item: frequency}``.
        threshold: the iceberg threshold ``T`` (items with ``f >= T`` are
            reported; only items below it can be false positives).
        m, k: the SBF parameters.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    if m <= 0 or k <= 0:
        raise ValueError("m and k must be positive")
    n = len(counts)
    d = frequency_histogram(counts)
    # Cumulative count of items with frequency >= x, for x = T - f.
    freqs = sorted(d)
    total_error = 0.0
    for f, fraction in d.items():
        if f >= threshold:
            continue
        need = threshold - f
        heavy_fraction = sum(d[g] for g in freqs if g >= need)
        heavy_items = n * heavy_fraction
        e_f = (1.0 - math.exp(-k * heavy_items / m)) ** k
        total_error += fraction * e_f
    return total_error


def figure4_curve(n: int, total: int, z: float, *, k: int = 5,
                  target_gamma: float = 1.0, thresholds: int = 20,
                  seed: int = 0) -> list[tuple[float, float]]:
    """One Figure 4 series: ``(threshold % of max frequency, error rate)``.

    Uses a *sampled* Zipfian multiset (like the paper's experimental data)
    so ``d(f)`` has the realistic spread around the expected frequencies;
    k = 5 and gamma = 1 ("a smaller Bloom Filter than the optimal") by
    default.
    """
    from repro.data.zipf import zipf_multiset
    counts = zipf_multiset(n, total, z, seed=seed)
    m = max(1, round(len(counts) * k / target_gamma))
    top = max(counts.values())
    out = []
    for j in range(1, thresholds + 1):
        pct = j / thresholds
        threshold = max(1, round(pct * top))
        out.append((pct * 100.0,
                    iceberg_error_rate(counts, threshold, m, k)))
    return out
