"""Compressed Bloom filter sizing [Mit01] (paper §1.1.3).

"It is easily shown that a Bloom Filter that is space-optimized is
characterized by its bit vector being completely random, which makes
compression inefficient ... by maintaining a locally larger Bloom Filter,
it is possible to achieve a compressed version which is more efficient."

Given a *transmission* budget of ``z`` bits for ``n`` keys, the sender may
keep a local filter of ``m >= z`` bits with fewer hash functions, as long
as its entropy ``m H(p)`` fits the budget after compression.  This module
provides the [Mit01] trade-off machinery:

- :func:`fill_probability` / :func:`entropy_bits` — filter statistics;
- :func:`false_positive_rate` — error of an (m, k, n) filter;
- :func:`best_configuration` — numerically minimise the false-positive
  rate subject to the compressed-size budget, recovering Mitzenmacher's
  headline: the compressed optimum uses *fewer* hash functions and a
  *larger* local filter than the classic ``k = ln2 * m/n``.
"""

from __future__ import annotations

import math


def fill_probability(n: int, k: int, m: int) -> float:
    """Probability a given bit is set: ``1 - e^(-kn/m)``."""
    if m <= 0 or k <= 0:
        raise ValueError("m and k must be positive")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return 1.0 - math.exp(-k * n / m)


def entropy_bits(m: int, p: float) -> float:
    """Shannon bound on the compressed size of an m-bit vector at fill p."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return m * -(p * math.log2(p) + (1 - p) * math.log2(1 - p))


def false_positive_rate(n: int, k: int, m: int) -> float:
    """``(1 - e^(-kn/m))^k``."""
    return fill_probability(n, k, m) ** k


def compressed_size(n: int, k: int, m: int) -> float:
    """Entropy bound on the wire size of the (m, k) filter holding n keys."""
    return entropy_bits(m, fill_probability(n, k, m))


def best_configuration(n: int, budget_bits: int, *,
                       max_expansion: float = 8.0,
                       ) -> tuple[int, int, float]:
    """Minimise the false-positive rate within a compressed-size budget.

    Searches local sizes ``m`` in [budget, max_expansion * budget] and all
    feasible ``k``; returns ``(m, k, false_positive_rate)`` of the best
    configuration whose entropy fits the budget.

    Raises:
        ValueError: if even the classic in-place filter cannot fit (i.e.
            the budget is non-positive).
    """
    if budget_bits <= 0:
        raise ValueError(f"budget_bits must be positive, got {budget_bits}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    best: tuple[int, int, float] | None = None
    steps = 48
    for step in range(steps + 1):
        m = round(budget_bits * (1.0 + (max_expansion - 1.0) * step / steps))
        max_k = max(1, round(math.log(2) * m / n) + 2)
        for k in range(1, max_k + 1):
            if compressed_size(n, k, m) > budget_bits:
                continue
            rate = false_positive_rate(n, k, m)
            if best is None or rate < best[2]:
                best = (m, k, rate)
    if best is None:  # pragma: no cover - budget>0 always admits k=1, big m
        raise ValueError("no feasible configuration within the budget")
    return best


def classic_configuration(n: int, m: int) -> tuple[int, float]:
    """The uncompressed baseline: optimal k and its error at local size m."""
    from repro.core.params import optimal_k
    k = optimal_k(m, n)
    return k, false_positive_rate(n, k, m)
