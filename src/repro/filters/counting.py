"""The 4-bit counting Bloom filter of Summary Cache [FCAB98] (paper §1.1.3).

Each position holds a small saturating counter (4 bits by default), which is
"shown statistically to be enough to encode the number of items mapped to
the same location ... However this approach is not adequate when trying to
encode the frequencies of items within multi-sets" — the motivating gap for
the SBF.  We reproduce the structure faithfully, including saturation: once
a counter hits ``2^bits - 1`` it sticks there and deletions no longer
decrement it (the standard safe behaviour).
"""

from __future__ import annotations

from typing import Iterable

from repro.hashing.families import HashFamily, make_family


class CountingBloomFilter:
    """Counting Bloom filter with fixed-width saturating counters.

    Supports *set* semantics with deletions.  Frequency estimates are capped
    at the saturation value, which makes it a deliberately weak multiset
    estimator — exactly the baseline the SBF improves on.

    Args:
        m: number of counters.
        k: number of hash functions.
        bits_per_counter: counter width (4 in [FCAB98]).
    """

    def __init__(self, m: int, k: int, *, bits_per_counter: int = 4,
                 seed: int = 0, hash_family: object = "modmul"):
        if m <= 0 or k <= 0:
            raise ValueError("m and k must be positive")
        if bits_per_counter < 1:
            raise ValueError(
                f"bits_per_counter must be >= 1, got {bits_per_counter}")
        self.m = int(m)
        self.k = int(k)
        self.bits_per_counter = int(bits_per_counter)
        self.saturation = (1 << bits_per_counter) - 1
        self.family: HashFamily = make_family(hash_family, self.m, self.k,
                                              seed=seed)
        self._counts = [0] * self.m
        self.n_added = 0
        #: number of counter saturation events (overflow diagnostics)
        self.overflows = 0

    # ------------------------------------------------------------------
    def add(self, key: object) -> None:
        """Insert one occurrence of *key* (counters saturate)."""
        for i in self.family.indices(key):
            if self._counts[i] >= self.saturation:
                self.overflows += 1
            else:
                self._counts[i] += 1
        self.n_added += 1

    def update(self, keys: Iterable) -> None:
        """Insert every key of the iterable."""
        for key in keys:
            self.add(key)

    def remove(self, key: object) -> None:
        """Delete one occurrence of *key*.

        Saturated counters are left untouched (decrementing them could
        create false negatives for other keys); zero counters are left at
        zero.
        """
        for i in self.family.indices(key):
            if 0 < self._counts[i] < self.saturation:
                self._counts[i] -= 1
        self.n_added = max(0, self.n_added - 1)

    def __contains__(self, key: object) -> bool:
        return all(self._counts[i] > 0 for i in self.family.indices(key))

    def contains(self, key: object) -> bool:
        """Membership test (false positives possible)."""
        return key in self

    def estimate(self, key: object) -> int:
        """Saturating frequency estimate: ``min`` of the counters.

        Any estimate equal to the saturation value means "at least this
        much" — the multiset failure mode §1.1.3 calls out.
        """
        return min(self._counts[i] for i in self.family.indices(key))

    def is_saturated(self, key: object) -> bool:
        """True if the estimate for *key* hit the counter ceiling."""
        return self.estimate(key) >= self.saturation

    def storage_bits(self) -> int:
        """Model size: ``m`` fixed-width counters."""
        return self.m * self.bits_per_counter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CountingBloomFilter(m={self.m}, k={self.k}, "
                f"bits={self.bits_per_counter})")
