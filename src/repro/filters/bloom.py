"""The classic Bloom filter [Blo70] (paper §2.1).

A set synopsis over a bit vector of ``m`` bits and ``k`` hash functions:
membership tests have no false negatives and false positives with
probability ``E_b ~= (1 - e^(-kn/m))^k``.  Used here both as the baseline
the SBF extends and as the marker filter ``Bf`` of Recurring Minimum.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.hashing.families import HashFamily, make_family
from repro.succinct.bitvector import BitVector


class BloomFilter:
    """Bit-vector Bloom filter with union and compressed-size accounting.

    Args:
        m: number of bits.
        k: number of hash functions.
        seed: determinism seed for the hash family.
        hash_family: family name/class/instance (see
            :func:`repro.hashing.families.make_family`).
    """

    def __init__(self, m: int, k: int, *, seed: int = 0,
                 hash_family: object = "modmul"):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.m = int(m)
        self.k = int(k)
        self.seed = int(seed)
        self.family: HashFamily = make_family(hash_family, self.m, self.k,
                                              seed=self.seed)
        self.bits = BitVector(self.m)
        self.n_added = 0

    @classmethod
    def for_items(cls, n: int, error_rate: float = 0.01,
                  **kwargs) -> "BloomFilter":
        """Size a filter for *n* expected items at *error_rate*."""
        from repro.core.params import optimal_k, optimal_m
        m = optimal_m(n, error_rate)
        return cls(m, optimal_k(m, n), **kwargs)

    # ------------------------------------------------------------------
    def add(self, key: object) -> None:
        """Insert *key* into the set."""
        for i in self.family.indices(key):
            self.bits.set_bit(i)
        self.n_added += 1

    def update(self, keys: Iterable) -> None:
        """Insert every key of the iterable."""
        for key in keys:
            self.add(key)

    def __contains__(self, key: object) -> bool:
        get = self.bits.get_bit
        return all(get(i) for i in self.family.indices(key))

    def contains(self, key: object) -> bool:
        """Membership test (false positives possible, no false negatives)."""
        return key in self

    # ------------------------------------------------------------------
    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Set union: bitwise OR of compatible filters."""
        if not self.family.is_compatible(other.family):
            raise ValueError("union requires identical parameters and "
                             "hash functions")
        result = BloomFilter(self.m, self.k, seed=self.seed,
                             hash_family=type(self.family))
        for i in range(self.m):
            if self.bits.get_bit(i) or other.bits.get_bit(i):
                result.bits.set_bit(i)
        result.n_added = self.n_added + other.n_added
        return result

    def __or__(self, other: "BloomFilter") -> "BloomFilter":
        return self.union(other)

    # ------------------------------------------------------------------
    def fill_ratio(self) -> float:
        """Fraction of set bits (0.5 at the optimal operating point)."""
        return self.bits.count_ones() / self.m

    def storage_bits(self) -> int:
        """Size of the bit vector in bits."""
        return self.m

    def compressed_bits(self) -> float:
        """Entropy lower bound on the compressed size, ``m * H(p)`` [Mit01].

        §1.1.3 discusses Mitzenmacher's observation that a space-optimal
        filter (p = 0.5) is incompressible, while an under-loaded one can be
        shipped compressed.  This returns the Shannon bound for the current
        fill ratio.
        """
        p = self.fill_ratio()
        if p in (0.0, 1.0):
            return 0.0
        entropy = -(p * math.log2(p) + (1 - p) * math.log2(1 - p))
        return self.m * entropy

    def false_positive_rate(self, n: int | None = None) -> float:
        """Expected ``E_b`` for *n* items (default: items added so far)."""
        from repro.core.params import bloom_error
        return bloom_error(self.n_added if n is None else n, self.k, self.m)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomFilter(m={self.m}, k={self.k}, n={self.n_added})"
