"""Count-Min sketch with optional conservative update [EV02] (paper §3.2).

The sketch keeps ``depth`` independent rows of ``width`` counters; each row
has its own hash function.  Plain updates increment one counter per row;
*conservative update* — proposed by Estan & Varghese and, as the paper
notes, "independently proposed in [EV02]" as the same idea as Minimal
Increase — only advances counters equal to the current minimum.

Included as a cross-check baseline: an SBF with the MI method and a CM
sketch with conservative update implement the same estimator over different
layouts (k functions into one array vs one function per row), so their
accuracy should land in the same ballpark — an ablation the benchmarks run.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.hashing.families import HashFamily, make_family


class CountMinSketch:
    """Count-Min sketch over ``depth x width`` counters.

    Args:
        width: counters per row.
        depth: number of rows (independent hash functions).
        conservative: use conservative update (Minimal Increase's twin).
    """

    def __init__(self, width: int, depth: int, *, conservative: bool = False,
                 seed: int = 0, hash_family: object = "modmul"):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = int(width)
        self.depth = int(depth)
        self.conservative = bool(conservative)
        # One k=depth family over `width`: function j addresses row j.
        self.family: HashFamily = make_family(hash_family, self.width,
                                              self.depth, seed=seed)
        self._rows = [[0] * self.width for _ in range(self.depth)]
        self.total_count = 0

    # ------------------------------------------------------------------
    def _cells(self, key: object) -> list[tuple[int, int]]:
        return list(enumerate(self.family.indices(key)))

    def insert(self, key: object, count: int = 1) -> None:
        """Record *count* occurrences of *key*."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        cells = self._cells(key)
        if self.conservative:
            current = min(self._rows[r][c] for r, c in cells)
            target = current + count
            for r, c in cells:
                if self._rows[r][c] < target:
                    self._rows[r][c] = target
        else:
            for r, c in cells:
                self._rows[r][c] += count
        self.total_count += count

    def update(self, items: Mapping[object, int] | Iterable) -> None:
        """Bulk insert: a ``{key: count}`` mapping or an iterable of keys."""
        if isinstance(items, Mapping):
            for key, count in items.items():
                self.insert(key, count)
        else:
            for key in items:
                self.insert(key)

    def query(self, key: object) -> int:
        """Frequency estimate: minimum over the rows (one-sided error)."""
        return min(self._rows[r][c] for r, c in self._cells(key))

    def estimate(self, key: object) -> int:
        """Alias for :meth:`query`."""
        return self.query(key)

    def storage_bits(self) -> int:
        """Model size: sum of counter bit lengths (1 bit per zero)."""
        return sum(max(1, v.bit_length()) for row in self._rows for v in row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "conservative" if self.conservative else "plain"
        return f"CountMinSketch({self.width}x{self.depth}, {mode})"
