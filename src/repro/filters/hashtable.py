"""A chained hash table — the exact-counting baseline of Figures 12 and 15.

The paper compares the SBF against the LEDA hash table (chaining for
collision resolution), using the same hash functions as the SBF "to create
maximum match between the two schemes".  We reproduce that: the table is
keyed by the first function of a ``k=1`` family of the same type, stores
``(key, count)`` pairs in per-bucket chains, and reports both the loose
``m log m`` and the tight ``sum log i`` key-storage accounting of Figure 15.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

from repro.hashing.families import HashFamily, make_family


class ChainedHashTable:
    """Exact multiset counter with chained buckets.

    Args:
        buckets: number of buckets (the paper sets this equal to the SBF's
            ``m`` for the comparison).
    """

    def __init__(self, buckets: int, *, seed: int = 0,
                 hash_family: object = "modmul"):
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        self.buckets = int(buckets)
        self.family: HashFamily = make_family(hash_family, self.buckets, 1,
                                              seed=seed)
        self._table: list[list[list]] = [[] for _ in range(self.buckets)]
        self.n_distinct = 0
        self.total_count = 0
        #: chain links traversed (probe-cost diagnostic for Figure 12)
        self.probes = 0

    # ------------------------------------------------------------------
    def _bucket(self, key: object) -> list[list]:
        return self._table[self.family.indices(key)[0]]

    def insert(self, key: object, count: int = 1) -> None:
        """Record *count* occurrences of *key*."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        bucket = self._bucket(key)
        for entry in bucket:
            self.probes += 1
            if entry[0] == key:
                entry[1] += count
                self.total_count += count
                return
        bucket.append([key, count])
        self.n_distinct += 1
        self.total_count += count

    def update(self, items: Mapping[object, int] | Iterable) -> None:
        """Bulk insert: a ``{key: count}`` mapping or an iterable of keys."""
        if isinstance(items, Mapping):
            for key, count in items.items():
                self.insert(key, count)
        else:
            for key in items:
                self.insert(key)

    def delete(self, key: object, count: int = 1) -> None:
        """Remove *count* occurrences; drops the entry at zero.

        Raises:
            KeyError: if the key is absent.
            ValueError: if more occurrences are removed than exist.
        """
        bucket = self._bucket(key)
        for pos, entry in enumerate(bucket):
            self.probes += 1
            if entry[0] == key:
                if entry[1] < count:
                    raise ValueError(
                        f"cannot delete {count} of {key!r}; only {entry[1]}")
                entry[1] -= count
                self.total_count -= count
                if entry[1] == 0:
                    bucket.pop(pos)
                    self.n_distinct -= 1
                return
        raise KeyError(key)

    def query(self, key: object) -> int:
        """Exact frequency of *key* (0 if absent)."""
        for entry in self._bucket(key):
            self.probes += 1
            if entry[0] == key:
                return entry[1]
        return 0

    def estimate(self, key: object) -> int:
        """Alias for :meth:`query` (exact, for interface parity)."""
        return self.query(key)

    def __contains__(self, key: object) -> bool:
        return self.query(key) > 0

    def __len__(self) -> int:
        return self.n_distinct

    def items(self) -> Iterator[tuple[object, int]]:
        """Iterate over ``(key, count)`` pairs."""
        for bucket in self._table:
            for key, count in bucket:
                yield key, count

    # ------------------------------------------------------------------
    # storage accounting (Figure 15)
    # ------------------------------------------------------------------
    def key_storage_bits_loose(self) -> float:
        """Figure 15's loose estimate ``m log2 m`` for m distinct keys."""
        m = max(2, self.n_distinct)
        return self.n_distinct * math.log2(m)

    def key_storage_bits_tight(self) -> float:
        """Figure 15's tight estimate ``sum_{i=1..m} log2 i``."""
        return sum(math.log2(i) for i in range(2, self.n_distinct + 1))

    def counter_storage_bits(self) -> int:
        """Bits for the counts themselves (same model as the SBF's N)."""
        return sum(max(1, count.bit_length()) for _key, count in self.items())

    def storage_bits(self) -> float:
        """Counts plus tight key storage."""
        return self.counter_storage_bits() + self.key_storage_bits_tight()

    def max_chain_length(self) -> int:
        """Longest bucket chain (clustering diagnostic, §6.4)."""
        return max((len(b) for b in self._table), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ChainedHashTable(buckets={self.buckets}, "
                f"distinct={self.n_distinct})")
