"""Baseline filters and sketches the paper builds on or compares against.

- :class:`BloomFilter` — the classic bit-vector filter [Blo70] (§2.1), also
  used as the Recurring Minimum marker filter ``Bf`` (§3.3);
- :class:`CountingBloomFilter` — the 4-bit counting filter of Summary Cache
  [FCAB98] (§1.1.3), which supports set deletions but saturates on
  multisets — the gap the SBF fills;
- :class:`CountMinSketch` — the multiple-hashing sketch with optional
  conservative update [EV02], the independent rediscovery of Minimal
  Increase (§3.2);
- :class:`ChainedHashTable` — the exact-counting baseline of Figures 12/15.
"""

from repro.filters.bloom import BloomFilter
from repro.filters.counting import CountingBloomFilter
from repro.filters.count_min import CountMinSketch
from repro.filters.hashtable import ChainedHashTable

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "CountMinSketch",
    "ChainedHashTable",
]
