"""Extension experiment — distributed-join traffic (§5.3's advantage).

The paper's §5.3 argues the Spectral Bloomjoin's value qualitatively
("saving bandwidth", "eliminating the need for a feedback") without a
figure; this benchmark quantifies it on our substrate across join
selectivities:

- naive shipping: move all of S to R's site;
- classic Bloomjoin [ML86]: filter out, surviving tuples back (2 rounds);
- Spectral Bloomjoin: one SBF across, zero tuples (1 round).

Shape claims asserted:

- both filter protocols beat naive shipping at low selectivity;
- the Spectral Bloomjoin always uses exactly 1 round (vs 2), and its
  traffic is flat in the join selectivity (it ships a synopsis, never
  tuples) while the classic Bloomjoin's grows with the match rate;
- the grouped-count answers keep the one-sided guarantee.
"""

import random

from repro.apps.bloomjoin import (
    bloomjoin,
    exact_grouped_join_count,
    spectral_bloomjoin_count,
)
from repro.bench.tables import format_table, write_results
from repro.db.relation import Relation
from repro.db.site import tuple_bits, two_sites

N_R = 600
N_S = 3000
M = 8192
SELECTIVITIES = (0.1, 0.3, 0.6, 0.9)


def build_relations(selectivity: float, seed: int):
    """R holds `N_R` keys; a `selectivity` fraction of S's rows match."""
    rng = random.Random(seed)
    r = Relation("R", ("a", "x"), [(i, i) for i in range(N_R)])
    s_rows = []
    for j in range(N_S):
        if rng.random() < selectivity:
            key = rng.randrange(N_R)            # matching tuple
        else:
            key = N_R + rng.randrange(10 * N_R)  # non-matching tuple
        s_rows.append((key, j))
    return r, Relation("S", ("a", "y"), s_rows)


def run_traffic():
    rows = []
    for selectivity in SELECTIVITIES:
        r, s = build_relations(selectivity, seed=42)
        naive_bits = tuple_bits(s.rows)

        site1, site2, net = two_sites()
        site1.store(r)
        site2.store(s)
        joined = bloomjoin(site1, "R", site2, "S", "a", m=M, seed=42)
        classic_bits, classic_rounds = net.total_bits, net.rounds

        net.reset()
        counts = spectral_bloomjoin_count(site1, "R", site2, "S", "a",
                                          m=M, seed=42)
        spectral_bits, spectral_rounds = net.total_bits, net.rounds

        truth = exact_grouped_join_count(r, s, "a")
        one_sided = all(counts.get(v, 0) >= c for v, c in truth.items())
        rows.append([selectivity, naive_bits, classic_bits, classic_rounds,
                     spectral_bits, spectral_rounds, len(joined),
                     one_sided])
    return rows


def test_bloomjoin_traffic(run_once):
    rows = run_once(run_traffic)

    spectral_traffic = [row[4] for row in rows]
    classic_traffic = [row[2] for row in rows]
    for row in rows:
        selectivity, naive, classic, c_rounds, spectral, s_rounds, \
            _joined, one_sided = row
        assert c_rounds == 2
        assert s_rounds == 1
        assert one_sided
        # The spectral synopsis always beats shipping everything.
        assert spectral < naive
        if selectivity <= 0.3:
            assert classic < naive

    # Classic traffic grows with selectivity; spectral stays flat.
    assert classic_traffic[-1] > 2 * classic_traffic[0]
    assert max(spectral_traffic) <= 1.2 * min(spectral_traffic)
    # At high selectivity the spectral protocol wins big.
    assert spectral_traffic[-1] < classic_traffic[-1] / 2

    table = format_table(
        ["selectivity", "naive bits", "classic bits", "classic rounds",
         "spectral bits", "spectral rounds", "joined tuples",
         "one-sided"],
        rows,
        title=(f"Distributed grouped join traffic (|R|={N_R}, |S|={N_S}, "
               f"m={M}) - extension experiment for §5.3"))
    write_results("bloomjoin_traffic", table)
