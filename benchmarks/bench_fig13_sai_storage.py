"""Figure 13 — String-Array Index size vs the raw bit vector.

Paper setting: array sizes 1k-500k, measured twice — freshly initialised
(average frequency 0) and after 10n random increments (average frequency
10); the raw bit vector (counters + slack) is compared with the full
structure.  The paper reads off "about 1.5N bits in the initial state, and
about 2N bits in the final state".

Shape claims asserted:
- the index overhead is bounded: total <= ~3x the raw bit vector at
  every size, in both states (the paper's 1.5-2.5x band, with slack for
  our slightly different slack policy);
- overhead grows after the insertions (level-3 offset vectors appear),
  matching the paper's explanation of the 1.5N -> 2N jump.
"""

import random

from repro.bench.runner import bench_scale
from repro.bench.tables import format_table, write_results
from repro.succinct.string_array import StringArrayIndex


def sizes() -> list[int]:
    scale = bench_scale()
    return [int(s * scale) for s in (1000, 5000, 25000, 100_000)]


def measure(n: int, seed: int = 7):
    empty = StringArrayIndex([0] * n)
    empty_raw = empty.storage_breakdown()["base_array"]
    empty_total = empty.total_bits()

    rng = random.Random(seed)
    filled = StringArrayIndex([0] * n)
    for _ in range(10 * n):
        filled.increment(rng.randrange(n))
    filled_raw = filled.storage_breakdown()["base_array"]
    filled_total = filled.total_bits()
    return (n, empty_raw, empty_total, filled_raw, filled_total)


def run_figure13():
    return [measure(n) for n in sizes()]


def test_figure13(run_once):
    rows = run_once(run_figure13)
    for n, empty_raw, empty_total, filled_raw, filled_total in rows:
        ratio_empty = empty_total / empty_raw
        ratio_filled = filled_total / filled_raw
        # Bounded overhead in both states (paper: ~1.5x empty, ~2x full).
        # The lookup table is a *shared* structure whose realised size is
        # amortised over N; at the smallest array it has not amortised yet,
        # so the band is wider below n = 5000.
        cap = 3.0 if n >= 5000 else 5.0
        assert 1.0 <= ratio_empty < cap, f"n={n}: empty ratio {ratio_empty}"
        assert 1.0 <= ratio_filled < cap, (
            f"n={n}: filled ratio {ratio_filled}")
        # Filling grows the absolute structure (more counter bits).
        assert filled_total > empty_total

    # The o(N) character: the overhead *ratio* shrinks as n grows.
    first_ratio = rows[0][4] / rows[0][3]
    last_ratio = rows[-1][4] / rows[-1][3]
    assert last_ratio <= first_ratio

    table = format_table(
        ["n", "bit vector (f=0)", "SAI total (f=0)", "ratio (f=0)",
         "bit vector (f=10)", "SAI total (f=10)", "ratio (f=10)"],
        [[n, er, et, et / er, fr, ft, ft / fr]
         for n, er, et, fr, ft in rows],
        title="Figure 13: String-Array Index vs raw bit vector (bits)")
    write_results("fig13_sai_storage", table)
