"""Figure 1 — expected relative error vs item rank for Zipfian skews.

Paper setting: n = 10 000 distinct items, k = 5 hash functions, skews
z in {0.2, 0.6, 1, 1.4, 1.8, 2}; the plotted quantity is the Equation (1)
bound E'(RE_i^z) conditioned on a Bloom error.

Shape claims asserted:
- every curve rises monotonically with rank (less frequent -> worse);
- higher skews start lower for frequent items but cross above lower skews
  for rare items (the crossover the paper highlights);
- magnitudes match the figure's axis (peak around 1-2 for these params).
"""

from repro.analysis.zipf_errors import figure1_curves
from repro.bench.tables import format_table, write_results

N = 10_000
K = 5
SKEWS = (0.2, 0.6, 1.0, 1.4, 1.8, 2.0)


def run_figure1():
    return figure1_curves(n=N, k=K, skews=SKEWS, points=20)


def test_figure1_curves(run_once):
    curves = run_once(run_figure1)

    # Monotone rising in rank, for every skew.
    for z, series in curves.items():
        values = [v for _rank, v in series]
        assert values == sorted(values), f"skew {z} curve not monotone"

    # Crossover: at the most frequent sampled rank high skew wins; at the
    # rarest rank the ordering flips.
    first_rank_vals = {z: series[0][1] for z, series in curves.items()}
    last_rank_vals = {z: series[-1][1] for z, series in curves.items()}
    assert first_rank_vals[2.0] < first_rank_vals[0.2]
    assert last_rank_vals[2.0] > last_rank_vals[0.2]

    # Magnitude: the figure's y-axis tops out around 1.8.
    peak = max(v for series in curves.values() for _r, v in series)
    assert 0.3 < peak < 4.0

    # Render the series as one table: rank x skew grid.
    ranks = [r for r, _v in curves[SKEWS[0]]]
    headers = ["rank"] + [f"z={z}" for z in SKEWS]
    rows = [[rank] + [curves[z][i][1] for z in SKEWS]
            for i, rank in enumerate(ranks)]
    table = format_table(headers, rows,
                         title=f"Figure 1: E'(RE_i^z), n={N}, k={K}")
    write_results("fig01_zipf_relative_error", table)
