"""Chaos scenarios — the six seed specs under their fault schedules.

Runs every seed scenario of the declarative harness (DESIGN.md §13)
through the real serving stack on a simulated clock: CDN hot-object
counting on a replicated fleet with a gray-slow shard, iceberg alerting
through a mid-run crash + WAL recovery, a rate limiter surviving a
process-pool worker kill, bloomjoin probe traffic under 55% packet
loss, a rolling reshard under churn, and a tenant mount/unmount storm.

The bounding-pair oracle referees every answer (zero wrong answers is
the pass bar, not a statistic), per-phase availability must clear the
spec floors, and the aggregate document is written to
``benchmarks/results/scenarios.json`` in the same shape as the other
committed baselines — ``meta`` + top-level ``pass`` flag + stable
per-scenario rows.  ``compare_to_baseline`` never compares timings, so
quick and full runs check against the same committed file.

CLI:
    PYTHONPATH=src python benchmarks/bench_scenarios.py \
        [--quick] [--json-out PATH] [--baseline PATH]

``--baseline`` compares the fresh aggregate against a committed
document and exits non-zero on regressions (the CI gate).
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.tables import format_table, results_dir, write_results
from repro.scenario import SEED_NAMES, aggregate, compare_to_baseline, \
    load_seed, run_scenario
from repro.scenario.aggregator import dumps


def _run_seeds(quick: bool) -> list[dict]:
    reports = []
    for name in SEED_NAMES:
        spec = load_seed(name, quick=quick)
        # strict=False: the aggregate pass flag and the baseline gate
        # decide the verdict; one failing scenario should not hide the
        # others' reports.
        reports.append(run_scenario(spec, strict=False))
    return reports


def _render(document: dict) -> str:
    headers = ["scenario", "topology", "ops", "reads", "ambiguous",
               "compared", "exact", "wrong", "avail_min", "faults", "pass"]
    rows = [[row["name"], row["topology"], row["ops"], row["reads"],
             row["ambiguous"], row["compared"], row["exact_compared"],
             row["wrong_answers"], row["availability_min"],
             row["faults_fired"], row["pass"]]
            for row in document["scenarios"]]
    mode = "quick" if document["meta"]["quick"] else "full"
    return format_table(
        headers, rows,
        title=f"Chaos scenarios — zero-wrong-answer oracle ({mode} mode)")


def run_scenarios(quick: bool = False) -> dict:
    """Run all seed scenarios; write the aggregate JSON and table."""
    document = aggregate(_run_seeds(quick), quick=quick)
    path = os.path.join(results_dir(), "scenarios.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(document))
    table = _render(document)
    write_results("scenarios", table)
    print(table)
    assert document["pass"], \
        [row["failures"] for row in document["scenarios"]
         if not row["pass"]]
    for row in document["scenarios"]:
        assert row["wrong_answers"] == 0, row
        assert row["compared"] > 0, row
    return document


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    baseline_path = None
    if "--baseline" in argv:
        baseline_path = argv[argv.index("--baseline") + 1]
    document = run_scenarios(quick=quick)
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            fh.write(dumps(document))
        print(f"wrote {json_out}")
    if baseline_path:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
        regressions = compare_to_baseline(document, baseline)
        if regressions:
            for line in regressions:
                print(f"REGRESSION: {line}")
            return 1
        print(f"no regressions against {baseline_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
