"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` module reproduces one table or figure of the paper's
evaluation section (see DESIGN.md §2 for the index).  Conventions:

- the experiment body is a plain function returning its rows, timed once
  through ``benchmark.pedantic(..., rounds=1)`` so ``--benchmark-only``
  runs select it;
- the rendered table is written to ``benchmarks/results/<name>.txt``;
- assertions check the paper's qualitative *shape* (who wins, rough
  factors, crossovers) — never exact figures, since the substrate differs;
- sizes scale with ``REPRO_BENCH_SCALE`` (default 1.0 keeps the suite
  a few minutes; 5-10 approaches paper scale).
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
