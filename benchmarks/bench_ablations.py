"""Ablations beyond the paper's charts, for the design choices DESIGN.md
calls out.

1. Recurring Minimum refinements: plain RM vs RM+marker filter vs
   Trapping RM, on a skewed insert-only stream (error ratio + additive).
2. Hash families: the paper's modulo/multiply scheme vs multiply-shift,
   tabulation and double hashing — Bloom-error rates should be
   indistinguishable if modulo/multiply mixes well enough.
3. [MW94] blocked (external-memory) hashing: accuracy vs block size —
   large segments free, tiny segments measurably worse (§2.2's citation).
4. Storage backends: array vs String-Array Index vs §4.5 stream must give
   bit-identical estimates (the backend is purely a representation).
5. §4.6 storage reduction: the Theorem 9 exponent shrinks the realised
   index without touching any stored value.
6. MI vs Count-Min + conservative update: the same estimator over two
   layouts should land in the same accuracy ballpark at equal space.
"""

from repro.bench.metrics import evaluate_filter
from repro.bench.runner import average_trials
from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter
from repro.data.streams import insertion_stream
from repro.filters.count_min import CountMinSketch

N = 1000
K = 5
TOTAL = 20_000
M = round(N * K / 0.7)


def run_rm_variants():
    def one(method, options, seed):
        sbf = SpectralBloomFilter(M, K, method=method, seed=seed,
                                  method_options=options)
        truth: dict[int, int] = {}
        for x in insertion_stream(N, TOTAL, 1.0, seed=seed):
            truth[x] = truth.get(x, 0) + 1
            sbf.insert(x)
        return evaluate_filter(sbf, truth)

    rows = []
    for label, method, options in [
        ("rm", "rm", {}),
        ("rm+marker", "rm", {"use_marker": True}),
        ("trm", "trm", {}),
    ]:
        avg = average_trials(
            lambda seed, me=method, op=options: one(me, op, seed),
            trials=3, base_seed=1000)
        rows.append([label, avg["error_ratio"], avg["additive_error"],
                     avg["false_negative_ratio"]])
    return rows


def run_hash_families():
    rows = []
    for family in ("modmul", "multiply-shift", "tabulation", "double"):
        def one(seed, fam=family):
            sbf = SpectralBloomFilter(M, K, method="ms", seed=seed,
                                      hash_family=fam)
            truth: dict[int, int] = {}
            for x in insertion_stream(N, TOTAL, 0.5, seed=seed):
                truth[x] = truth.get(x, 0) + 1
                sbf.insert(x)
            return evaluate_filter(sbf, truth)

        avg = average_trials(one, trials=3, base_seed=1100)
        rows.append([family, avg["error_ratio"], avg["additive_error"]])
    return rows


def run_blocked_hashing():
    """[MW94] / §2.2 'External memory SBF': accuracy vs block size."""
    from repro.hashing import BlockedHashFamily

    def one(seed, block_size):
        if block_size is None:
            sbf = SpectralBloomFilter(M, K, method="ms", seed=seed)
        else:
            fam = BlockedHashFamily(M, K, seed=seed, block_size=block_size)
            sbf = SpectralBloomFilter(M, K, method="ms", seed=seed,
                                      hash_family=fam)
        truth: dict[int, int] = {}
        for x in insertion_stream(N, TOTAL, 0.5, seed=seed):
            truth[x] = truth.get(x, 0) + 1
            sbf.insert(x)
        return evaluate_filter(sbf, truth)

    rows = []
    for label, block in [("unblocked", None), ("m/8 blocks", M // 8),
                         ("m/64 blocks", M // 64), ("64-bit blocks", 64)]:
        avg = average_trials(lambda seed, b=block: one(seed, b),
                             trials=3, base_seed=1300)
        rows.append([label, avg["error_ratio"], avg["additive_error"]])
    return rows


def run_backend_equivalence():
    stream = insertion_stream(300, 4000, 0.8, seed=5)
    estimates = {}
    for backend in ("array", "compact", "stream"):
        sbf = SpectralBloomFilter(2200, K, seed=5, backend=backend)
        for x in stream:
            sbf.insert(x)
        estimates[backend] = [sbf.query(x) for x in range(300)]
    return estimates


def run_storage_reduction():
    """§4.6 / Theorem 9: the reduction exponent shrinks the index."""
    import random as _random
    from repro.succinct.string_array import StringArrayIndex

    rng = _random.Random(21)
    values = [rng.randrange(1, 200) for _ in range(6000)]
    rows = []
    for c in (0.0, 0.5, 1.0):
        sai = StringArrayIndex(list(values), reduction_c=c)
        for i in range(0, len(values), 5):
            sai.get(i)   # realise the lookup-table entries readers pay for
        rows.append([c, sai.index_bits(), sai.total_bits(),
                     sai.raw_bits()])
    return rows


def run_mi_vs_conservative_cm():
    def one(seed):
        truth: dict[int, int] = {}
        sbf = SpectralBloomFilter(M, K, method="mi", seed=seed)
        cms = CountMinSketch(width=M // K, depth=K, conservative=True,
                             seed=seed)
        for x in insertion_stream(N, TOTAL, 0.5, seed=seed):
            truth[x] = truth.get(x, 0) + 1
            sbf.insert(x)
            cms.insert(x)
        sbf_metrics = evaluate_filter(sbf, truth)
        cms_estimates = {x: cms.query(x) for x in truth}
        from repro.bench.metrics import additive_error
        return {
            "sbf_add": sbf_metrics["additive_error"],
            "cms_add": additive_error(cms_estimates, truth),
        }

    return average_trials(one, trials=3, base_seed=1200)


def test_rm_variants(run_once):
    rows = run_once(run_rm_variants)
    by_label = {row[0]: row for row in rows}
    # All variants land in the same accuracy band: trapping targets the
    # late-detection scenario (see the unit test that reproduces it) and
    # may trade a little aggregate E_add for it via over-corrections.
    assert by_label["trm"][2] <= by_label["rm"][2] * 2.0
    assert by_label["rm+marker"][1] <= by_label["rm"][1] * 2.0
    # Plain RM and RM+marker have no false negatives on insert-only data.
    assert by_label["rm"][3] == 0.0
    assert by_label["rm+marker"][3] == 0.0
    table = format_table(["variant", "error ratio", "E_add", "FN share"],
                         rows, title="Ablation: RM refinements")
    write_results("ablation_rm_variants", table)


def test_hash_families(run_once):
    rows = run_once(run_hash_families)
    ratios = [row[1] for row in rows]
    # The paper's modmul scheme is as good as the stronger families: all
    # error ratios within a small band of each other.
    assert max(ratios) < max(3 * min(ratios), min(ratios) + 0.02)
    table = format_table(["family", "error ratio", "E_add"], rows,
                         title="Ablation: hash families (MS, gamma=0.7)")
    write_results("ablation_hash_families", table)


def test_blocked_hashing(run_once):
    rows = run_once(run_blocked_hashing)
    by_label = {row[0]: row for row in rows}
    baseline = by_label["unblocked"][1]
    # Large segments: negligible accuracy impact ([MW94]'s conclusion).
    assert by_label["m/8 blocks"][1] < 2 * baseline + 0.01
    # Tiny segments: measurable degradation (the analysis' other side).
    assert by_label["64-bit blocks"][1] > baseline
    table = format_table(["blocking", "error ratio", "E_add"], rows,
                         title="Ablation: [MW94] blocked hashing "
                               "(external-memory SBF)")
    write_results("ablation_blocked_hashing", table)


def test_backend_equivalence(run_once):
    estimates = run_once(run_backend_equivalence)
    assert estimates["array"] == estimates["compact"] == estimates["stream"]
    write_results("ablation_backends",
                  "All three backends (array / string-array index / coded "
                  "stream)\nreturned bit-identical estimates for 300 "
                  "queried keys.\n")


def test_storage_reduction(run_once):
    rows = run_once(run_storage_reduction)
    index_bits = [row[1] for row in rows]
    # Theorem 9's direction: reduction shrinks the index vs c = 0.
    assert index_bits[1] < index_bits[0]
    assert index_bits[2] < index_bits[0]
    # ... without touching the represented values (raw bits identical).
    raws = {row[3] for row in rows}
    assert len(raws) == 1
    table = format_table(["reduction c", "index bits", "total bits",
                          "raw bits"], rows,
                         title="Ablation: §4.6 storage-reduction exponent")
    write_results("ablation_storage_reduction", table)


def test_mi_vs_conservative_cm(run_once):
    avg = run_once(run_mi_vs_conservative_cm)
    # Same estimator family, different layout: same ballpark (within 5x
    # either way — layouts do differ in collision structure).
    ratio = (avg["sbf_add"] + 1e-9) / (avg["cms_add"] + 1e-9)
    assert 0.2 < ratio < 5.0
    table = format_table(
        ["structure", "E_add"],
        [["SBF + Minimal Increase", avg["sbf_add"]],
         ["Count-Min + conservative update", avg["cms_add"]]],
        title="Ablation: MI vs conservative-update CM at equal space")
    write_results("ablation_mi_vs_cm", table)
