"""Figure 14 — String-Array Index storage broken down by component.

Paper setting: same arrays as Figure 13; the stacked chart shows the bit
array, level-1 coarse offsets, level-2 offset vectors, level-3 offset
vectors and the lookup table.  The paper's key observation: "for the empty
array there is almost no need for 3rd level offset vectors, since all
subgroups are small enough to use the lookup table.  However, in the
filled array, there is a considerable number of groups that are too large
to be handled by the lookup table" — that is the 1.5N -> 2N jump.

Shape claims asserted:
- the base array is the largest component once the table has amortised;
- the filled array devotes at least as many bits to level-3 offset vectors
  as the empty one (relative to its base).  Note: our lazily-realised
  lookup table keeps handling the average-frequency-10 chunks (their bit
  size stays below T0), so the paper's "considerable number of groups too
  large for the lookup table" shows up here as growth in the *table and
  length-handle* components rather than the l3 band; the l3 conversion
  machinery itself is exercised by the unit tests with heavier counters;
- every component is accounted (total = sum of parts).
"""

import random

from repro.bench.runner import bench_scale
from repro.bench.tables import format_table, write_results
from repro.succinct.string_array import StringArrayIndex

COMPONENTS = ("base_array", "l1_coarse", "l2_offsets", "l3_offsets",
              "lookup_table", "length_encodings", "flags")


def sizes() -> list[int]:
    scale = bench_scale()
    return [int(s * scale) for s in (1000, 5000, 25000)]


def breakdown(n: int, avg_freq: int, seed: int = 8) -> dict[str, int]:
    sai = StringArrayIndex([0] * n)
    if avg_freq:
        rng = random.Random(seed)
        for _ in range(avg_freq * n):
            sai.increment(rng.randrange(n))
        # Touch every counter so lazily-realised lookup-table entries and
        # their accounting are materialised, as a reader would see them.
        for i in range(n):
            sai.get(i)
    return sai.storage_breakdown()


def run_figure14():
    rows = []
    for n in sizes():
        for avg in (0, 10):
            parts = breakdown(n, avg)
            rows.append([n, avg] + [parts[c] for c in COMPONENTS])
    return rows


def test_figure14(run_once):
    rows = run_once(run_figure14)
    by_key = {(row[0], row[1]): dict(zip(COMPONENTS, row[2:]))
              for row in rows}

    for (n, avg), parts in by_key.items():
        total = sum(parts.values())
        assert all(v >= 0 for v in parts.values())
        # Once the shared lookup table has amortised (n >= 5000), the base
        # array is the largest single component and carries a solid share
        # of the total; at the smallest size the table can still lead.
        if n >= 5000:
            assert parts["base_array"] == max(parts.values()), (n, avg,
                                                                parts)
            assert parts["base_array"] > total / 3, (n, avg, parts)

    for n in sizes():
        empty = by_key[(n, 0)]
        filled = by_key[(n, 10)]
        # The paper's observation: level-3 offset vectors appear (or grow,
        # relative to the base) once the array fills up.
        empty_l3_share = empty["l3_offsets"] / max(1, empty["base_array"])
        filled_l3_share = filled["l3_offsets"] / max(1,
                                                     filled["base_array"])
        assert filled_l3_share >= empty_l3_share

    table = format_table(
        ["n", "avg freq"] + list(COMPONENTS) + ["total"],
        [row + [sum(row[2:])] for row in rows],
        title="Figure 14: String-Array Index storage breakdown (bits)")
    write_results("fig14_sai_breakdown", table)
