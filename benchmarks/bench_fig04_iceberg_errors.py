"""Figure 4 — iceberg false-positive rates vs threshold for Zipfian skews.

Paper setting: k = 5, gamma = 1 ("a smaller Bloom Filter than the
optimal"), skews {0, 0.2, 0.4, 0.6, 0.8, 1, 1.2}; thresholds sweep 0-100%
of the maximal frequency.  The analytic model is
``E = sum_f d(f) (1 - e^(-k*D_f/m))^k`` (§5.2), and the key observation:
although the raw Bloom error at these parameters is Eb ~= 0.1, the iceberg
error "never exceeds 0.025, while at most relevant thresholds it drops
below 0.01".

The benchmark computes the analytic curves AND validates one skew
empirically against a real SBF iceberg query.
"""

import collections

from repro.analysis.iceberg_math import figure4_curve, iceberg_error_rate
from repro.apps.iceberg import IcebergIndex
from repro.bench.tables import format_table, write_results
from repro.core.params import bloom_error_from_gamma
from repro.data.streams import insertion_stream

N = 1000
TOTAL = 50_000
K = 5
GAMMA = 1.0
SKEWS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2)
POINTS = 20


def run_curves():
    return {z: figure4_curve(N, TOTAL, z, k=K, target_gamma=GAMMA,
                             thresholds=POINTS)
            for z in SKEWS}


def empirical_validation(z: float = 1.0, seed: int = 9):
    """Build a real SBF iceberg index and measure its false positives."""
    stream = insertion_stream(N, TOTAL, z, seed=seed)
    truth = collections.Counter(stream)
    m = round(len(truth) * K / GAMMA)
    # Minimum Selection so the measurement matches the analytic model,
    # which assumes plain Bloom-style contamination.
    index = IcebergIndex(m=m, k=K, method="ms", seed=seed)
    index.consume(stream)
    top = max(truth.values())
    out = []
    for pct in (0.05, 0.2, 0.5):
        threshold = max(1, round(pct * top))
        reported = set(index.query(threshold))
        true_ice = {x for x, c in truth.items() if c >= threshold}
        assert true_ice <= reported          # no false negatives, ever
        fp_rate = len(reported - true_ice) / len(truth)
        model = iceberg_error_rate(dict(truth), threshold, m, K)
        out.append((pct, fp_rate, model))
    return out


def test_figure4_analytic_curves(run_once):
    curves = run_once(run_curves)
    eb = bloom_error_from_gamma(GAMMA, K)

    peak_by_skew = {}
    for z, series in curves.items():
        errors = [e for _pct, e in series]
        # Never exceeds the raw Bloom error (iceberg errors are a subset).
        assert all(0.0 <= e <= eb * 1.02 for e in errors)
        peak_by_skew[z] = errors.index(max(errors))

    # The headline claim is about skewed data ("at most relevant
    # thresholds it drops below 0.01"): for z >= 0.6 the whole curve sits
    # far below Eb ~= 0.1.  (Near-uniform data behaves differently in our
    # model at extreme thresholds — recorded in EXPERIMENTS.md.)
    for z in SKEWS:
        if z >= 0.6:
            errors = [e for _pct, e in curves[z]]
            assert max(errors) < 0.03
            assert errors[-1] < max(0.01, max(errors))

    # The peak moves to lower thresholds as the skew increases (0.2 vs 1.0).
    assert peak_by_skew[1.0] <= peak_by_skew[0.2]
    # ... and skewed curves fall after their peak.
    for z in (0.2, 0.4, 0.6):
        errors = [e for _pct, e in curves[z]]
        assert errors[-1] < max(errors)

    headers = ["threshold %"] + [f"z={z}" for z in SKEWS]
    pcts = [pct for pct, _e in curves[SKEWS[0]]]
    rows = [[pct] + [curves[z][i][1] for z in SKEWS]
            for i, pct in enumerate(pcts)]
    table = format_table(headers, rows,
                         title=(f"Figure 4: iceberg error rates "
                                f"(k={K}, gamma={GAMMA}, n={N}, "
                                f"M={TOTAL})"))
    write_results("fig04_iceberg_errors", table)


def test_figure4_empirical_validation(run_once):
    points = run_once(empirical_validation)
    for _pct, fp_rate, model in points:
        # The measured rate should live in the model's neighbourhood (the
        # model ignores secondary stepping, so allow a loose band) and,
        # like the model, stay far under the raw Bloom error.
        assert fp_rate <= 0.05
        assert abs(fp_rate - model) < 0.03
    table = format_table(
        ["threshold %top", "measured FP rate", "model"],
        [[f"{pct:.0%}", fp, model] for pct, fp, model in points],
        title="Figure 4 validation: real SBF iceberg vs analytic model")
    write_results("fig04_empirical_validation", table)
