"""Standalone experiment driver: regenerate every table and figure.

Usage:
    python benchmarks/run_all.py [pattern ...] [--only SUBSTRING]
                                 [--json-out PATH] [--quick]

Runs the experiment body of each ``bench_*.py`` module directly (without
pytest's benchmark machinery), writes the rendered tables to
``benchmarks/results/`` and prints them.  Positional patterns and
``--only`` both filter by filename substring, e.g.
``python benchmarks/run_all.py fig06 table1`` or
``python benchmarks/run_all.py --only serving``.  With ``--json-out`` the
raw result of every entry point (keyed ``module::entry``, plus elapsed
seconds) is additionally dumped as one JSON document under
``"experiments"``, stamped with a ``"meta"`` block (git commit,
UTC timestamp, python/numpy versions, platform) so the artifact CI
uploads can be compared against a baseline.  ``--quick`` is forwarded
to every entry point that accepts a ``quick`` parameter (the chaos and
failure-injection benchmarks scale themselves down); entries without
one run at full size regardless.

The pytest entry point (``pytest benchmarks/ --benchmark-only``) runs the
same experiments *plus* the shape assertions and timing statistics; this
driver is the quick look-at-the-numbers path.
"""

from __future__ import annotations

import datetime
import importlib.util
import inspect
import json
import os
import platform
import subprocess
import sys
import time


def _load_module(path: str):
    name = os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# Curated entry points for modules whose default run needs a specific
# subset or order (some define parameterised helpers or slow extras that
# the driver should not call).  Modules NOT listed here are discovered
# from disk: every ``bench_*.py`` runs its argument-free ``run_*``
# callables, so a new benchmark can never be silently skipped by a stale
# list — forgetting to register it just means alphabetical entry order.
EXPERIMENTS: dict[str, list[str]] = {
    "bench_fig01_zipf_relative_error.py": ["run_figure1"],
    "bench_table1_recurring_minimum.py": ["run_table1"],
    "bench_table2_memory_tradeoff.py": ["run_table2"],
    "bench_fig04_iceberg_errors.py": ["run_curves", "empirical_validation"],
    "bench_fig06_gamma_sweep.py": ["run_gamma_sweep", "run_k_sweep"],
    "bench_fig07_forest_cover.py": ["run_forest"],
    "bench_fig08_deletions.py": ["run_figure8"],
    "bench_fig09_sliding_window.py": ["run_figure9"],
    "bench_fig10_encodings.py": ["run_figure10"],
    "bench_fig11_sai_performance.py": ["run_figure11"],
    "bench_fig12_sbf_vs_hashtable.py": ["run_figure12"],
    "bench_fig13_sai_storage.py": ["run_figure13"],
    "bench_fig14_sai_breakdown.py": ["run_figure14"],
    "bench_fig15_storage_vs_hashtable.py": ["run_figure15"],
    "bench_bloomjoin_traffic.py": ["run_traffic"],
    "bench_serving_throughput.py": ["run_serving_throughput"],
    "bench_bulk_kernels.py": ["run_bulk_kernels"],
    "bench_ablations.py": ["run_rm_variants", "run_hash_families",
                           "run_blocked_hashing", "run_storage_reduction",
                           "run_mi_vs_conservative_cm"],
}


def _parse_args(argv: list[str]) -> tuple[list[str], str | None, bool]:
    """Split *argv* into filename patterns, a JSON path and quick mode."""
    patterns: list[str] = []
    json_out: str | None = None
    quick = False
    it = iter(argv)
    for arg in it:
        if arg in ("--only", "--json-out"):
            value = next(it, None)
            if value is None:
                raise SystemExit(f"{arg} needs a value")
            if arg == "--only":
                patterns.append(value)
            else:
                json_out = value
        elif arg == "--quick":
            quick = True
        elif arg.startswith("-"):
            raise SystemExit(f"unknown flag {arg!r} "
                             "(use --only SUBSTRING / --json-out PATH / "
                             "--quick)")
        else:
            patterns.append(arg)
    return patterns, json_out, quick


def _runnable_unaided(fn) -> bool:
    """Can the driver call *fn* with no arguments?"""
    try:
        parameters = inspect.signature(fn).parameters.values()
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return False
    return all(p.default is not p.empty
               or p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
               for p in parameters)


def _discover_entries(module) -> list[str]:
    """Entry points of an unregistered benchmark module.

    Every module-level ``run_*`` callable the driver can invoke bare
    (no required parameters — parameterised helpers like a per-size
    ``run_one_size(n)`` are excluded), in definition order.
    """
    return [name for name in vars(module)
            if name.startswith("run_")
            and callable(getattr(module, name))
            and getattr(getattr(module, name), "__module__", None)
            == module.__name__
            and _runnable_unaided(getattr(module, name))]


def _all_benchmarks(here: str) -> list[str]:
    """Every benchmark module: the registered set plus whatever is on
    disk, so a freshly added ``bench_*.py`` runs without registration."""
    on_disk = {name for name in os.listdir(here)
               if name.startswith("bench_") and name.endswith(".py")}
    missing = set(EXPERIMENTS) - on_disk
    if missing:
        raise SystemExit(f"EXPERIMENTS registers modules that do not "
                         f"exist: {sorted(missing)}")
    return sorted(on_disk)


def main(argv: list[str]) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    patterns, json_out, quick = _parse_args(argv)
    total = 0
    collected: dict[str, dict] = {}
    for filename in _all_benchmarks(here):
        if patterns and not any(p in filename for p in patterns):
            continue
        path = os.path.join(here, filename)
        module = _load_module(path)
        entry_points = EXPERIMENTS.get(filename)
        if entry_points is None:
            entry_points = _discover_entries(module)
        if not entry_points:
            print(f"!! {filename}: no argument-free run_* entry point; "
                  f"nothing to run")
            continue
        for entry in entry_points:
            fn = getattr(module, entry)
            kwargs = {}
            if quick and "quick" in inspect.signature(fn).parameters:
                kwargs["quick"] = True
            started = time.perf_counter()
            result = fn(**kwargs)
            elapsed = time.perf_counter() - started
            total += 1
            print(f"== {filename}::{entry}  ({elapsed:.1f}s)")
            _print_result(result)
            print()
            collected[f"{filename}::{entry}"] = {
                "elapsed_s": round(elapsed, 3),
                "result": result,
            }
    if json_out is not None:
        document = {"meta": _provenance(), "experiments": collected}
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        print(f"wrote {json_out}")
    print(f"{total} experiments run; tables in benchmarks/results/")
    return 0


def _provenance() -> dict:
    """Stamp a result document with what produced it.

    Without the commit and library versions a saved JSON is just numbers;
    with them it can be compared against a baseline (did the code change,
    or the machine?).
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except OSError:
        sha = None
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "git_sha": sha,
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
    }


def _print_result(result) -> None:
    if isinstance(result, dict):
        for key, value in result.items():
            print(f"  {key}: {value}")
    elif isinstance(result, list):
        for row in result[:12]:
            print(f"  {row}")
        if len(result) > 12:
            print(f"  ... ({len(result) - 12} more rows)")
    else:
        print(f"  {result}")


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
