"""Figure 6 — MS vs MI vs RM accuracy across gamma and k (synthetic Zipf).

Paper setting (§6.1): 1000 distinct integer values, M = 100 000 total
items, k = 5, Zipf skew 0.5; five trials per point.

- (a) additive error vs gamma in ~[0.12, 2];
- (b) error ratio vs gamma (log scale in the paper);
- (c) additive error vs k in 1..6 at gamma = 0.7.

RM is measured in both storage conventions: sharing the total budget
(primary 2m/3 + secondary m/3, the §6.1 "fair comparison" protocol) and
with the secondary as additional memory (primary m + secondary m/2, the
Table 1 convention).  Shape claims asserted:

- MI beats MS on both metrics across the sweep (best overall);
- RM with the Table-1 convention beats MS at every load; in the shared-
  budget convention RM tracks MS at low loads and pays for its overloaded
  primary at high gamma (deviation from the paper's reading, recorded in
  EXPERIMENTS.md — the paper computes rather than measures its RM error);
- all methods degrade as gamma grows;
- at k = 1 MS and MI coincide; MI improves sharply with k.

M defaults to 20 000 (5x smaller than the paper) for runtime; scale with
REPRO_BENCH_SCALE=5 for paper scale.
"""

from repro.bench.metrics import evaluate_filter
from repro.bench.runner import average_trials, bench_scale
from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter
from repro.data.streams import insertion_stream

N = 1000
K = 5
SKEW = 0.5
TRIALS = 3
GAMMAS = (0.12, 0.25, 0.5, 0.7, 1.0, 1.4, 2.0)
KS = (1, 2, 3, 4, 5, 6)


def total_items() -> int:
    return int(20_000 * bench_scale())


def run_point(method: str, m: int, k: int, seed: int) -> dict[str, float]:
    if method == "rm-budget":
        # Shared budget: primary 2m/3 + secondary m/3.
        sbf = SpectralBloomFilter(2 * m // 3, k, method="rm", seed=seed,
                                  method_options={"secondary_m": m // 3})
    elif method == "rm-extra":
        # Table 1 convention: primary m + secondary m/2 extra.
        sbf = SpectralBloomFilter(m, k, method="rm", seed=seed,
                                  method_options={"secondary_m": m // 2})
    else:
        sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
    truth: dict[int, int] = {}
    for x in insertion_stream(N, total_items(), SKEW, seed=seed):
        truth[x] = truth.get(x, 0) + 1
        sbf.insert(x)
    return evaluate_filter(sbf, truth)


METHOD_COLUMNS = ("ms", "rm-budget", "rm-extra", "mi")


def run_gamma_sweep():
    rows = []
    for gamma in GAMMAS:
        m = round(N * K / gamma)
        row = [gamma]
        for method in METHOD_COLUMNS:
            avg = average_trials(
                lambda seed, me=method: run_point(me, m, K, seed),
                trials=TRIALS, base_seed=600)
            row.extend([avg["additive_error"], avg["error_ratio"]])
        rows.append(row)
    return rows


def run_k_sweep():
    rows = []
    for k in KS:
        m = round(N * k / 0.7)  # gamma fixed at 0.7 by growing m with k
        row = [k]
        for method in METHOD_COLUMNS:
            avg = average_trials(
                lambda seed, me=method, mm=m, kk=k: run_point(me, mm, kk,
                                                              seed),
                trials=TRIALS, base_seed=700)
            row.append(avg["additive_error"])
        rows.append(row)
    return rows


def test_figure6ab_gamma_sweep(run_once):
    rows = run_once(run_gamma_sweep)
    # Columns: gamma, then (E_add, ratio) per METHOD_COLUMNS.
    for row in rows:
        gamma = row[0]
        ms_add, ms_ratio = row[1], row[2]
        rme_add, rme_ratio = row[5], row[6]
        mi_add, mi_ratio = row[7], row[8]
        # MI never loses to MS on either metric (Claim 4).
        assert mi_add <= ms_add + 1e-9
        assert mi_ratio <= ms_ratio + 1e-9
        # RM in the Table-1 convention beats MS at every load.
        assert rme_ratio <= ms_ratio + 1e-9, f"gamma={gamma}"

    # Aggregate improvements across the sweep (the Figure 6 story):
    total_ms = sum(row[2] for row in rows)
    total_rm_budget = sum(row[4] for row in rows)
    total_mi = sum(row[8] for row in rows)
    assert total_mi < total_ms / 1.5          # MI the clear winner
    # Shared-budget RM stays within a small factor of MS overall (its
    # overloaded primary costs it at high gamma — see module docstring).
    assert total_rm_budget < 3 * total_ms

    # Everything degrades as gamma grows: last point worse than first.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] > rows[0][2]

    table = format_table(
        ["gamma",
         "MS E_add", "MS ratio",
         "RM(budget) E_add", "RM(budget) ratio",
         "RM(extra) E_add", "RM(extra) ratio",
         "MI E_add", "MI ratio"],
        rows,
        title=(f"Figure 6a,b: accuracy vs gamma (n={N}, "
               f"M={total_items()}, k={K}, Zipf {SKEW}, {TRIALS} trials)"))
    write_results("fig06ab_gamma_sweep", table)


def test_figure6c_k_sweep(run_once):
    rows = run_once(run_k_sweep)
    # Columns: k, ms, rm-budget, rm-extra, mi.
    k1 = rows[0]
    # At k = 1 MS and MI are the same algorithm.
    assert abs(k1[1] - k1[4]) / max(k1[1], 1e-9) < 0.35
    # MI improves dramatically with k (paper: "improves dramatically").
    mi_k1, mi_k5 = rows[0][4], rows[4][4]
    assert mi_k5 < mi_k1 / 3
    # At k = 5, MI beats MS clearly; RM(extra) also beats MS.
    assert rows[4][4] < rows[4][1]
    assert rows[4][3] < rows[4][1]

    table = format_table(
        ["k", "MS E_add", "RM(budget) E_add", "RM(extra) E_add",
         "MI E_add"],
        rows,
        title=(f"Figure 6c: additive error vs k at gamma=0.7 "
               f"(n={N}, M={total_items()}, Zipf {SKEW})"))
    write_results("fig06c_k_sweep", table)
