"""Figure 11 — String-Array Index build/update/lookup times vs array size.

Paper setting: array sizes 1 000 to 1 000 000; per size (i) initialise all
zeros, (ii) 10n random increments (average frequency 10), (iii) n lookups;
both total time and time-per-action are reported; insert timing includes
slack-exhaustion rebuilds.

Shape claims asserted:
- "the complexities of those actions are linear with n": total time grows
  roughly linearly (we allow a generous band, this is wall-clock);
- time per action is roughly constant across sizes (amortised O(1));
- lookups are cheaper than updates.

Sizes default to 1k-20k for pure-Python runtime; REPRO_BENCH_SCALE=10
pushes towards paper scale.
"""

import random
import time

from repro.bench.runner import bench_scale
from repro.bench.tables import format_table, write_results
from repro.succinct.string_array import StringArrayIndex


def sizes() -> list[int]:
    scale = bench_scale()
    return [int(s * scale) for s in (1000, 4000, 16000)]


def run_one_size(n: int, seed: int = 5):
    rng = random.Random(seed)
    t0 = time.perf_counter()
    sai = StringArrayIndex([0] * n)
    t_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(10 * n):
        sai.increment(rng.randrange(n))
    t_update = (time.perf_counter() - t0) / 10  # per n actions, like §6.4

    t0 = time.perf_counter()
    for i in range(n):
        sai.get(i)
    t_lookup = time.perf_counter() - t0

    assert sum(sai) == 10 * n  # sanity: every increment landed
    return t_build, t_update, t_lookup, sai.rebuilds


def run_figure11():
    return [(n, *run_one_size(n)) for n in sizes()]


def test_figure11(run_once):
    rows = run_once(run_figure11)

    per_action = []
    for n, t_build, t_update, t_lookup, _rebuilds in rows:
        per_action.append((n, t_build / n, t_update / n, t_lookup / n))

    # Amortised O(1): per-action time varies by < 8x across a 16x size
    # span (wall-clock noise allowed; the paper's chart is flat).
    for column in (1, 2, 3):
        values = [row[column] for row in per_action]
        assert max(values) < 8 * min(values), (
            f"per-action column {column} not ~constant: {values}")

    # Total time roughly linear: the largest size costs more than the
    # smallest (trivially true if per-action is constant).
    assert rows[-1][2] > rows[0][2]

    table = format_table(
        ["n", "build s", "update s (n ops)", "lookup s (n ops)",
         "rebuilds", "build us/op", "update us/op", "lookup us/op"],
        [[n, tb, tu, tl, rb, tb / n * 1e6, tu / n * 1e6, tl / n * 1e6]
         for (n, tb, tu, tl, rb) in rows],
        title="Figure 11: String-Array Index performance (pure Python)")
    write_results("fig11_sai_performance", table)
