"""Table 1 — Recurring Minimum error anatomy across loads.

Paper setting: k = 5, n = 1000 distinct items, Zipf skew 0.5, secondary
SBF of size ms = m/2, gamma in {1, 0.83, 0.7, 0.625, 0.5}.  Columns:
gamma, the theoretical Bloom error Eb, the measured fraction of recurring
minima P(Rx), the error rate among them P(Ex|Rx), the secondary load
gamma_s = n(1-P(Rx))k/ms, the secondary Bloom error Eb^s, the overall RM
error E_RM, and the gain Eb/E_RM.

Shape claims asserted (vs the paper's rows):
- P(Rx) grows as gamma shrinks (0.657 at gamma=1 -> 0.969 at gamma=0.5);
- errors given a recurring minimum are far rarer than Eb;
- at gamma = 0.7 the overall gain Eb/E_RM is well above 1 (paper: 18.5x;
  we assert >= 2x to stay robust across substrate details).
"""

from repro.bench.runner import average_trials
from repro.bench.tables import format_table, write_results
from repro.core.params import bloom_error_from_gamma
from repro.core.sbf import SpectralBloomFilter
from repro.data.streams import insertion_stream

N = 1000
K = 5
TOTAL = 20_000
SKEW = 0.5
GAMMAS = (1.0, 0.83, 0.7, 0.625, 0.5)
TRIALS = 3


def run_gamma(gamma: float, seed: int) -> dict[str, float]:
    m = round(N * K / gamma)
    sbf = SpectralBloomFilter(m, K, method="rm", seed=seed,
                              method_options={"secondary_m": m // 2})
    truth: dict[int, int] = {}
    for x in insertion_stream(N, TOTAL, SKEW, seed=seed):
        truth[x] = truth.get(x, 0) + 1
        sbf.insert(x)
    method = sbf.method
    recurring = 0
    recurring_errors = 0
    errors = 0
    for x, f in truth.items():
        estimate = sbf.query(x)
        if estimate != f:
            errors += 1
        if method._has_recurring_minimum(sbf.counter_values(x)):
            recurring += 1
            if estimate != f:
                recurring_errors += 1
    n_items = len(truth)
    p_rx = recurring / n_items
    return {
        "p_rx": p_rx,
        "p_ex_given_rx": recurring_errors / recurring if recurring else 0.0,
        "gamma_s": n_items * (1 - p_rx) * K / (m // 2),
        "e_rm": errors / n_items,
    }


def run_table1():
    rows = []
    for gamma in GAMMAS:
        avg = average_trials(lambda seed, g=gamma: run_gamma(g, seed),
                             trials=TRIALS, base_seed=100)
        eb = bloom_error_from_gamma(gamma, K)
        ebs = bloom_error_from_gamma(avg["gamma_s"], K)
        # The paper's Table 1 computes E_RM from its components:
        # E_RM = P(Rx) P(Ex|Rx) + (1 - P(Rx)) Eb^s.  We report that plus
        # the directly measured error ratio (which also carries the
        # transfer-time contamination the formula ignores).
        e_rm_formula = (avg["p_rx"] * avg["p_ex_given_rx"]
                        + (1 - avg["p_rx"]) * ebs)
        gain = eb / e_rm_formula if e_rm_formula > 0 else float("inf")
        rows.append([gamma, eb, avg["p_rx"], avg["p_ex_given_rx"],
                     avg["gamma_s"], ebs, e_rm_formula, gain,
                     avg["e_rm"]])
    return rows


def test_table1(run_once):
    rows = run_once(run_table1)
    by_gamma = {row[0]: row for row in rows}

    # P(Rx) grows as the load shrinks (paper: 0.657 -> 0.969).
    p_rx = [row[2] for row in rows]  # ordered gamma 1.0 -> 0.5
    assert p_rx[0] < p_rx[-1]
    assert p_rx[-1] > 0.85
    assert 0.5 < p_rx[0] < 0.9

    # Recurring minima are trustworthy: P(Ex|Rx) << Eb at every load.
    for gamma, eb, _p_rx, p_ex_rx, *_rest in rows:
        assert p_ex_rx < eb, f"gamma={gamma}: recurring-min errors too high"

    # The headline row: at gamma = 0.7 the paper's formula-based gain is
    # 18.5x; assert a conservative >= 5x, and that the directly measured
    # error ratio also beats Eb.
    gamma07 = by_gamma[0.7]
    assert gamma07[7] >= 5.0, f"gain at gamma=0.7 only {gamma07[7]:.2f}"
    assert gamma07[8] < gamma07[1], "measured E_RM should be below Eb"

    # The secondary is lightly loaded everywhere (gamma_s < gamma).
    for row in rows:
        assert row[4] < row[0] * 2

    table = format_table(
        ["gamma", "Eb", "P(Rx)", "P(Ex|Rx)", "gamma_s", "Eb_s",
         "E_RM (formula)", "Eb/E_RM", "E_RM (measured)"],
        rows,
        title=(f"Table 1: RM error anatomy (k={K}, n={N}, Zipf {SKEW}, "
               f"ms=m/2, {TRIALS} trials, M={TOTAL})"))
    write_results("table1_recurring_minimum", table)
