"""Multi-process shard executor — fleet throughput vs worker count.

The point of :class:`~repro.serve.procpool.ProcessShardPool` is escaping
the GIL: each shard's filter lives in its own worker process, and the
pipelined bulk path keeps every worker's pipe full, so fleet ops/s should
scale with cores.  This benchmark drives identical mixed insert/query
traffic through pools of 1, 2 and 4 workers and reports ops/s per
configuration plus the 4-worker scaling factor.

The floor is **core-count-conditional** and the JSON records
``cpu_count`` alongside the measurements: on a ≥4-core host the pool must
reach ≥2x at 4 workers (the ROADMAP target); on smaller hosts true
parallel speedup is physically unavailable — four workers time-slice one
core — so the floor degrades to ``max(0.5, 0.45 * cores)``: the pool must
stay within ~2x of single-worker throughput (IPC overhead bounded), and
must show real scaling as soon as the cores exist.  The committed
baseline (``results/multiprocess_scaling.json``) was generated on a
1-vCPU VM — re-generate on a multi-core host to exercise the 2x floor.

Traffic is all-int keys, so the pool's binary frame path carries the
batches (8 bytes/key instead of JSON); batches are sized well above the
per-frame fixed costs but small enough that the three configurations see
many pipelined rounds each.

CLI:
    PYTHONPATH=src python benchmarks/bench_multiprocess_scaling.py \
        [--quick] [--json-out PATH]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

import numpy as np

from repro.bench.tables import format_table, write_results
from repro.serve import ProcessShardPool

M, K, SEED = 1 << 18, 4, 29
WORKERS = (1, 2, 4)
BATCH = 4_000


def _batches(n_ops: int, seed: int = SEED) -> list[tuple[list, list]]:
    rng = np.random.default_rng(seed)
    out = []
    for start in range(0, n_ops, BATCH):
        size = min(BATCH, n_ops - start)
        keys = rng.integers(0, 200_000, size).tolist()
        counts = rng.integers(1, 4, size).tolist()
        out.append((keys, counts))
    return out


def _pool_ops_per_s(n_workers: int, batches: list) -> float:
    """Best-of-2 mixed insert/query throughput for one pool size."""
    best = 0.0
    for _ in range(2):
        with ProcessShardPool(n_workers, M, K, seed=SEED) as pool:
            n_ops = 0
            t0 = time.perf_counter()
            for i, (keys, counts) in enumerate(batches):
                if i % 2 == 0:
                    pool.insert_many(keys, counts).raise_first()
                else:
                    pool.query_many(keys).raise_first()
                n_ops += len(keys)
            best = max(best, n_ops / (time.perf_counter() - t0))
    return best


def scaling_floor(cpu_count: int) -> float:
    """The pass floor for the 4-worker scaling factor on this host."""
    if cpu_count >= 4:
        return 2.0
    return max(0.5, 0.45 * cpu_count)


def run_multiprocess_scaling(quick: bool = False) -> dict:
    n_ops = 24_000 if quick else 160_000
    cpu_count = os.cpu_count() or 1
    batches = _batches(n_ops)
    result: dict = {
        "n_ops": n_ops, "m": M, "k": K, "batch": BATCH, "quick": quick,
        "cpu_count": cpu_count,
        "floor": round(scaling_floor(cpu_count), 2),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    rows = []
    base = None
    for n_workers in WORKERS:
        ops = _pool_ops_per_s(n_workers, batches)
        if base is None:
            base = ops
        scaling = ops / base
        result[f"workers.{n_workers}"] = {
            "ops_per_s": round(ops), "scaling": round(scaling, 2),
        }
        rows.append((n_workers, f"{ops:,.0f}", f"{scaling:.2f}x"))
    result["scaling_at_4"] = result["workers.4"]["scaling"]
    table = format_table(
        ["workers", "ops/s", "scaling"], rows,
        title=(f"ProcessShardPool throughput vs worker count "
               f"(n_ops={n_ops:,} per config, batch={BATCH:,}, "
               f"m={M:,}/shard, host cores={cpu_count}, "
               f"floor@4={result['floor']}x)"))
    write_results("multiprocess_scaling", table)
    print(table)
    return result


def _meets_bar(result: dict) -> list[str]:
    floor = result["floor"]
    if result["scaling_at_4"] < floor:
        return [f"scaling_at_4: {result['scaling_at_4']}x < {floor}x "
                f"(cpu_count={result['cpu_count']})"]
    return []


def test_multiprocess_scaling(run_once):
    result = run_once(run_multiprocess_scaling, quick=True)
    assert not _meets_bar(result), result


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    result = run_multiprocess_scaling(quick=quick)
    failures = _meets_bar(result)
    result["pass"] = not failures
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_out}")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
