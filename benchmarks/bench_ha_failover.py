"""HA failover — availability and latency through a single-replica outage.

The HA layer's pitch (DESIGN.md §9) is that a replica set keeps its
whole keyspace answerable while any single replica is down: writes ack
at ``ONE`` and queue a durable hint for the dead replica, quorum reads
are satisfied by the surviving majority, and consecutive-failure
ejection stops the fleet from paying retry budgets on every operation.
This benchmark measures exactly that claim on a fleet whose replicas
all live behind :class:`~repro.db.faults.FaultyNetwork` wires:

- **healthy** — mixed insert/query traffic with all ``RF`` replicas up;
- **outage** — one replica of *every* replica set is partitioned away
  (the "lost an availability zone" shape); traffic keeps flowing and
  every refused operation is counted against availability;
- **recovered** — the partition heals, maintenance ticks drain the
  hint queues, and an anti-entropy pass certifies convergence.

Shape claims asserted:
- availability during the outage is at least 99% (in this topology the
  surviving quorum answers everything, so it is exactly 100%);
- zero query answers differ from the unsharded oracle filter in any
  phase;
- after recovery every replica of every set is bit-identical (equal
  per-block checksums), i.e. hinted handoff + repair converged.

CLI:
    PYTHONPATH=src python benchmarks/bench_ha_failover.py \
        [--quick] [--json-out PATH]
"""

from __future__ import annotations

import json
import random
import sys
import time

from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.transport import DeliveryFailed
from repro.persist import ConcurrentSBF
from repro.serve import (
    MetricsRegistry,
    RemoteShard,
    ShardServer,
    Unavailable,
    block_checksums,
    replicated_fleet,
)

N_SHARDS = 2
RF = 3
M = 1 << 14
K = 4
SEED = 29
DOWN_REPLICA = 1          # replica index partitioned away in every set
EJECT_AFTER = 3
MAX_RETRIES = 2
REPAIR_BLOCKS = 64
COORD = "coord"


def _make_filter() -> SpectralBloomFilter:
    return SpectralBloomFilter(M, K, seed=SEED, method="ms",
                               backend="array", hash_family="blocked")


def _build(metrics: MetricsRegistry):
    """An RF-way replicated fleet, every replica behind a faulty wire."""
    network = FaultyNetwork()

    def replica_factory(shard: int, replica: int) -> RemoteShard:
        server = ShardServer(ConcurrentSBF(_make_filter()))
        return RemoteShard(server, network, COORD, f"s{shard}r{replica}",
                           channel_options={"max_retries": MAX_RETRIES},
                           metrics=metrics)

    fleet = replicated_fleet(
        N_SHARDS, M, K, rf=RF, seed=SEED,
        eject_after=EJECT_AFTER, probe_every=1 << 30,
        replica_factory=replica_factory, metrics=metrics)
    return fleet, network


def _drive(fleet, oracle, rng: random.Random, n_ops: int,
           pool: list) -> dict:
    """Mixed traffic (30% insert / 70% query); per-op outcome + latency."""
    latencies: list[float] = []
    served = refused = wrong = 0
    for _ in range(n_ops):
        if rng.random() < 0.3 or not pool:
            key = f"k:{rng.randrange(1 << 32)}"
            count = rng.randint(1, 3)
            t0 = time.perf_counter()
            try:
                fleet.insert(key, count)
            except (Unavailable, DeliveryFailed):
                refused += 1
            else:
                served += 1
                oracle.insert(key, count)
                pool.append(key)
            latencies.append(time.perf_counter() - t0)
        else:
            key = rng.choice(pool)
            t0 = time.perf_counter()
            try:
                estimate = fleet.query(key)
            except (Unavailable, DeliveryFailed):
                refused += 1
            else:
                served += 1
                if estimate != oracle.query(key):
                    wrong += 1
            latencies.append(time.perf_counter() - t0)
    return {"n_ops": n_ops, "served": served, "refused": refused,
            "wrong": wrong, "latencies": latencies}


def _quantile_ms(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index] * 1e3


def _partition(network: FaultyNetwork, server: str, seed: int) -> None:
    network.set_policy(COORD, server, FaultPolicy(drop=1.0, seed=seed))
    network.set_policy(server, COORD, FaultPolicy(drop=1.0, seed=seed + 1))


def _heal(network: FaultyNetwork, server: str) -> None:
    network.set_policy(COORD, server, None)
    network.set_policy(server, COORD, None)


def run_ha_failover(quick: bool = False) -> dict:
    n_ops = 300 if quick else 1_500
    metrics = MetricsRegistry()
    fleet, network = _build(metrics)
    oracle = _make_filter()
    rng = random.Random(SEED)
    pool: list = []

    phases: dict[str, dict] = {}
    phases["healthy"] = _drive(fleet, oracle, rng, n_ops, pool)

    # One replica of every set goes dark — the lost-host/AZ shape.
    for shard in range(N_SHARDS):
        _partition(network, f"s{shard}r{DOWN_REPLICA}", seed=shard)
    phases["outage"] = _drive(fleet, oracle, rng, n_ops, pool)
    outage_gauges = {
        name: value for name, value in
        metrics.snapshot()["gauges"].items()
        if name.startswith("ha.") and f"r{DOWN_REPLICA}." in name}

    # Heal, drain the hint queues through maintenance ticks, and run an
    # anti-entropy pass over every set.
    for shard in range(N_SHARDS):
        _heal(network, f"s{shard}r{DOWN_REPLICA}")
    for rset in fleet.shards:
        for _ in range(4):
            rset.tick()
            if all(r["up"] and not r["hint_depth"] and not r["needs_repair"]
                   for r in rset.health()):
                break
        rset.repair(n_blocks=REPAIR_BLOCKS)
    phases["recovered"] = _drive(fleet, oracle, rng, n_ops, pool)

    converged = all(
        len({tuple(block_checksums(replica, REPAIR_BLOCKS))
             for replica in rset.replicas}) == 1
        for rset in fleet.shards)
    for key in rng.sample(pool, min(200, len(pool))) + ["miss:1", "miss:2"]:
        if fleet.query(key) != oracle.query(key):
            phases["recovered"]["wrong"] += 1

    result = {
        "n_shards": N_SHARDS,
        "rf": RF,
        "m": M,
        "k": K,
        "read_consistency": "quorum",
        "write_consistency": "one",
        "eject_after": EJECT_AFTER,
        "quick": quick,
        "converged_bit_identical": converged,
        "wrong_answers": sum(p["wrong"] for p in phases.values()),
        "ha_gauges_during_outage": outage_gauges,
    }
    rows = []
    for name, phase in phases.items():
        availability = phase["served"] / phase["n_ops"]
        result[f"{name}_availability"] = availability
        result[f"{name}_p50_ms"] = _quantile_ms(phase["latencies"], 0.50)
        result[f"{name}_p99_ms"] = _quantile_ms(phase["latencies"], 0.99)
        rows.append((name, phase["n_ops"], phase["served"],
                     phase["refused"], f"{availability:.4f}",
                     f"{result[f'{name}_p50_ms']:.3f}",
                     f"{result[f'{name}_p99_ms']:.3f}"))
    result["availability"] = result["outage_availability"]
    result["p99_ms"] = result["outage_p99_ms"]

    table = format_table(
        ["phase", "ops", "served", "refused", "availability",
         "p50 ms", "p99 ms"], rows,
        title=(f"HA failover ({N_SHARDS} shards x RF={RF}, quorum reads, "
               f"replica r{DOWN_REPLICA} down during outage, "
               f"{n_ops} ops/phase)"))
    table += (f"wrong answers vs oracle: {result['wrong_answers']}   "
              f"replicas bit-identical after repair: {converged}\n")
    write_results("ha_failover", table)
    print(table)
    return result


def _passes(result: dict) -> bool:
    return (result["availability"] >= 0.99
            and result["wrong_answers"] == 0
            and result["converged_bit_identical"])


def test_ha_failover(run_once):
    result = run_once(run_ha_failover)
    # The acceptance bar: >= 99% of ops served through a single-replica
    # outage with RF=3/quorum reads, zero wrong answers, and replicas
    # converged bit-identically once hints drained and repair ran.
    assert result["availability"] >= 0.99, result
    assert result["wrong_answers"] == 0, result
    assert result["converged_bit_identical"], result


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    result = run_ha_failover(quick=quick)
    ok = _passes(result)
    result["pass"] = ok
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_out}")
    if not ok:
        print("FAIL: availability/correctness below the HA acceptance bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
