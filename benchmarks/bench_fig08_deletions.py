"""Figure 8 — method accuracy across skews, with and without deletions.

Paper setting: Zipfian streams of varying skew (0-2), gamma = 0.7, k = 5;
the deletion workload interleaves insert bursts with phases that pick 5%
of the items at random and delete them entirely.  Three panels: additive
error, error ratio, and the fraction of MI's errors that are false
negatives.

Shape claims asserted:
- without deletions: MI <= MS everywhere (insert-only dominance);
- with deletions: "the MI algorithm deteriorates dramatically" — its error
  becomes much worse than RM's, and most of its errors are false
  negatives ("almost all", >= 0.7 in the paper's panel);
- MS and RM have zero false negatives under deletions.
"""

from repro.bench.metrics import evaluate_filter
from repro.bench.runner import average_trials, bench_scale
from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter
from repro.data.streams import deletion_phase_workload, insertion_stream

N = 1000
K = 5
GAMMA = 0.7
SKEWS = (0.0, 0.5, 1.0, 1.5, 2.0)
TRIALS = 3
M = round(N * K / GAMMA)


def total_items() -> int:
    return int(15_000 * bench_scale())


def make_sbf(method: str, seed: int) -> SpectralBloomFilter:
    if method == "rm":
        # Table-1 convention (secondary additional to m); the shared-budget
        # variant is swept in bench_fig06/bench_fig09.
        return SpectralBloomFilter(M, K, method="rm", seed=seed,
                                   method_options={"secondary_m": M // 2})
    return SpectralBloomFilter(M, K, method=method, seed=seed)


def run_without_deletions(method: str, z: float, seed: int):
    sbf = make_sbf(method, seed)
    truth: dict[int, int] = {}
    for x in insertion_stream(N, total_items(), z, seed=seed):
        truth[x] = truth.get(x, 0) + 1
        sbf.insert(x)
    return evaluate_filter(sbf, truth)


def run_with_deletions(method: str, z: float, seed: int):
    sbf = make_sbf(method, seed)
    ops = deletion_phase_workload(N, total_items(), z, phases=4,
                                  delete_fraction=0.05, seed=seed)
    truth: dict[int, int] = {}
    for op, x in ops:
        if op == "insert":
            sbf.insert(x)
            truth[x] = truth.get(x, 0) + 1
        else:
            sbf.delete(x)
            truth[x] -= 1
    return evaluate_filter(sbf, truth)


def run_figure8():
    rows = []
    for z in SKEWS:
        row = [z]
        for runner in (run_without_deletions, run_with_deletions):
            for method in ("ms", "rm", "mi"):
                avg = average_trials(
                    lambda seed, me=method, zz=z, rn=runner: rn(me, zz,
                                                                seed),
                    trials=TRIALS, base_seed=800)
                row.append(avg["error_ratio"])
                if runner is run_with_deletions and method == "mi":
                    row.append(avg["false_negative_ratio"])
                    row.append(avg["additive_error"])
            if runner is run_with_deletions:
                # additive errors for RM under deletions (for the 1-2
                # orders-of-magnitude comparison).
                avg_rm = average_trials(
                    lambda seed, zz=z: run_with_deletions("rm", zz, seed),
                    trials=TRIALS, base_seed=800)
                row.append(avg_rm["additive_error"])
        rows.append(row)
    return rows


def test_figure8(run_once):
    rows = run_once(run_figure8)
    # Row layout: z, ms, rm, mi (no-del), ms_d, rm_d, mi_d, mi_fn,
    #             mi_add_d, rm_add_d.
    for row in rows:
        (z, ms, rm, mi, ms_d, rm_d, mi_d, mi_fn, mi_add_d,
         rm_add_d) = row
        # Insert-only: MI dominates MS.
        assert mi <= ms + 1e-9
        # With deletions MI deteriorates: worse than RM.
        assert mi_d >= rm_d
        # MI's deletion errors are mostly false negatives.
        if mi_d > 0.005:
            assert mi_fn >= 0.5, f"skew {z}: MI FN share only {mi_fn}"

    # Deterioration is dramatic in additive error on skewed data: the
    # paper reports 1-2 orders of magnitude vs RM; assert >= 3x somewhere.
    worst_factor = max(row[8] / max(row[9], 1e-6) for row in rows)
    assert worst_factor >= 3.0

    # MS and RM never produce false negatives under deletions (checked
    # here once; the unit suite asserts it per-item).
    for z in SKEWS[:2]:
        for method in ("ms", "rm"):
            res = run_with_deletions(method, z, seed=801)
            assert res["false_negative_ratio"] == 0.0

    table = format_table(
        ["skew", "MS", "RM", "MI", "MS+del", "RM+del", "MI+del",
         "MI FN share", "MI E_add+del", "RM E_add+del"],
        rows,
        title=(f"Figure 8: error ratios with/without deletions "
               f"(gamma={GAMMA}, k={K}, n={N}, M={total_items()}, "
               f"{TRIALS} trials)"))
    write_results("fig08_deletions", table)
