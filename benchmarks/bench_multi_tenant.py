"""Multi-tenant fleet index: spectral Bloofi tree vs scan-N baseline.

The claim under test (ISSUE 8): a fleet of N per-tenant SBFs indexed by a
spectral Bloofi tree answers the multi-set frequency question "which
tenants hold key x, and how many times?" while visiting a number of nodes
that grows *sublinearly* in N, beating the obvious baseline of scanning
all N filters — and with zero wrong answers, because inner-node pruning
is exact (the inner minimum dominates every descendant leaf estimate).

Workload: a bounded shared catalog (the regime where Bloofi-style
pruning pays off — think N cache nodes each holding a slice of one
product catalog).  Each tenant bulk-inserts a random catalog subset with
counts 1..3.  Three probe classes:

- ``sparse``: string keys placed in exactly R = 4 tenants, membership
  fixed as the fleet grows — the headline multi-set lookup.  Visits stay
  near R x height while the scan touches all N filters.
- ``absent``: keys in no tenant (half int, half str).  Pruned at or near
  the root regardless of N.
- ``dense``: hot catalog keys held by many tenants — correctness ballast
  (output-sensitive, so excluded from the sublinearity fit).

Per sweep point we measure mean nodes visited per query (from the
``tenancy.nodes_visited`` counter), wall-clock for the probe batch via
``query_many`` vs scanning every leaf handle, and exact agreement with
the scan oracle.  The growth exponent is the log-log slope of visits
against N; scan-N is exponent 1.0 by construction.

Full scale sweeps 1 000 / 4 000 / 10 000 tenants (about a minute);
``--quick`` runs 200 / 800 for CI.  REPRO_BENCH_SCALE multiplies the
sweep sizes.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.tables import format_table, write_results  # noqa: E402
from repro.tenancy import SpectralBloofiTree  # noqa: E402

SPARSE_REPLICATION = 4


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def _params(quick: bool) -> dict:
    scale = _scale()
    if quick:
        sweep, m, catalog, per_tenant = [200, 800], 4096, 500, 16
        n_sparse, n_absent, n_dense = 20, 40, 10
    else:
        sweep, m, catalog, per_tenant = [1_000, 4_000, 10_000], 16_384, 2_000, 24
        n_sparse, n_absent, n_dense = 40, 80, 20
    sweep = sorted({max(50, int(n * scale)) for n in sweep})
    return {
        "sweep": sweep, "m": m, "k": 3, "fanout": 16,
        "catalog": catalog, "objects_per_tenant": per_tenant,
        "n_sparse": n_sparse, "n_absent": n_absent, "n_dense": n_dense,
    }


def _probes(p: dict, rng: np.random.Generator) -> dict:
    """Probe keys by class.  Absent ints live far above the catalog
    range; half the absent set is strings to exercise the vectorised
    str-hashing path end to end."""
    half = p["n_absent"] // 2
    return {
        "sparse": [f"sku:{i}" for i in range(p["n_sparse"])],
        "absent": ([10_000_000 + i for i in range(half)]
                   + [f"ghost:{i}" for i in range(p["n_absent"] - half)]),
        "dense": [int(x) for x in rng.choice(p["catalog"], size=p["n_dense"],
                                             replace=False)],
    }


def _populate(tree: SpectralBloofiTree, start: int, stop: int, p: dict,
              sparse_owners: dict, rng: np.random.Generator) -> None:
    """Mount tenants ``start..stop`` and bulk-insert their catalog slice
    (plus any sparse keys this tenant owns)."""
    for tenant in range(start, stop):
        tree.mount(tenant)
        keys = [int(x) for x in rng.choice(
            p["catalog"], size=p["objects_per_tenant"], replace=False)]
        counts = rng.integers(1, 4, size=len(keys))
        tree.insert_many(tenant, keys, counts)
        for key in sparse_owners.get(tenant, ()):
            tree.insert(tenant, key, 1)


def _scan_baseline(tree: SpectralBloofiTree, probes: list) -> tuple:
    """Answer the probe batch the pedestrian way — every leaf handle's
    own ``query_many`` — returning (per-key answer dicts, seconds).
    Doubles as the correctness oracle: the tree reads the very same
    handles, so any disagreement is a pruning bug, not filter noise."""
    answers: list[dict] = [{} for _ in probes]
    started = time.perf_counter()
    for tenant in tree.tenants:
        estimates = tree.handle_of(tenant).query_many(probes)
        for slot in np.flatnonzero(estimates):
            answers[slot][tenant] = int(estimates[slot])
    return answers, time.perf_counter() - started


def _visits_per_query(tree: SpectralBloofiTree, probes: list) -> float:
    counter = tree.metrics.counter("tenancy.nodes_visited")
    before = counter.value
    tree.query_many(probes)
    return (counter.value - before) / len(probes)


def _fit_exponent(ns: list, visits: list) -> float:
    """Least-squares slope of log(visits) against log(N) — the empirical
    growth exponent (scan-N is 1.0; flat pruning is ~0)."""
    xs = np.log(np.asarray(ns, dtype=float))
    ys = np.log(np.maximum(np.asarray(visits, dtype=float), 1.0))
    slope = np.polyfit(xs, ys, 1)[0]
    return float(slope)


def run_multi_tenant(quick: bool = False) -> dict:
    p = _params(quick)
    rng = np.random.default_rng(1203)
    probes = _probes(p, rng)
    all_probes = probes["sparse"] + probes["absent"] + probes["dense"]

    # Sparse-key owners come from the smallest sweep point so membership
    # is identical at every fleet size (the lookup cost we are measuring
    # must not grow just because the answer set grew).
    sparse_owners: dict[int, list] = {}
    for key in probes["sparse"]:
        for tenant in rng.choice(p["sweep"][0], size=SPARSE_REPLICATION,
                                 replace=False):
            sparse_owners.setdefault(int(tenant), []).append(key)

    tree = SpectralBloofiTree(p["m"], p["k"], seed=11, fanout=p["fanout"])
    entries: dict[str, dict] = {}
    mounted = 0
    for n in p["sweep"]:
        build_started = time.perf_counter()
        _populate(tree, mounted, n, p, sparse_owners, rng)
        mounted = n
        build_s = time.perf_counter() - build_started

        oracle, scan_s = _scan_baseline(tree, all_probes)
        tree_started = time.perf_counter()
        got = tree.query_many(all_probes)
        tree_s = time.perf_counter() - tree_started
        mismatches = sum(1 for a, b in zip(got, oracle) if a != b)

        entry = {
            "tenants": n,
            "nodes": tree.n_nodes,
            "height": tree.height,
            "build_s": round(build_s, 3),
            "visits_sparse": round(
                _visits_per_query(tree, probes["sparse"]), 2),
            "visits_absent": round(
                _visits_per_query(tree, probes["absent"]), 2),
            "scan_visits": n,
            "tree_ms": round(tree_s * 1e3, 3),
            "scan_ms": round(scan_s * 1e3, 3),
            "speedup": round(scan_s / tree_s, 1),
            "mismatches": mismatches,
            "invariant_issues": len(tree.verify()),
        }
        entries[f"n={n}"] = entry

    ns = [e["tenants"] for e in entries.values()]
    result = {
        "quick": quick,
        "params": p,
        "probe_counts": {name: len(keys) for name, keys in probes.items()},
        "entries": entries,
        "exponent_sparse": round(_fit_exponent(
            ns, [e["visits_sparse"] for e in entries.values()]), 3),
        "exponent_absent": round(_fit_exponent(
            ns, [e["visits_absent"] for e in entries.values()]), 3),
    }

    rows = [[e["tenants"], e["nodes"], e["height"],
             e["visits_sparse"], e["visits_absent"], e["scan_visits"],
             e["tree_ms"], e["scan_ms"], f'{e["speedup"]}x',
             e["mismatches"]] for e in entries.values()]
    table = format_table(
        ["tenants", "nodes", "height", "visits/q sparse", "visits/q absent",
         "scan visits", "tree ms", "scan ms", "speedup", "wrong"],
        rows,
        title=(f"Multi-tenant Bloofi lookup vs scan-N "
               f"(m={p['m']}, k={p['k']}, fanout={p['fanout']}; "
               f"visit growth exponents: sparse "
               f"{result['exponent_sparse']}, absent "
               f"{result['exponent_absent']}; scan-N is 1.0)"))
    print(table)
    if not quick:
        write_results("multi_tenant", table)
    return result


def _meets_bar(result: dict, min_speedup: float,
               max_exponent: float) -> list[str]:
    failures = []
    for name, entry in result["entries"].items():
        if entry["mismatches"]:
            failures.append(f"{name}: {entry['mismatches']} answers "
                            f"disagree with the scan oracle")
        if entry["invariant_issues"]:
            failures.append(f"{name}: tree.verify() reported "
                            f"{entry['invariant_issues']} issues")
    largest = max(result["entries"].values(), key=lambda e: e["tenants"])
    if largest["speedup"] < min_speedup:
        failures.append(
            f"speedup {largest['speedup']}x at n={largest['tenants']} "
            f"below the {min_speedup}x bar")
    for probe_class in ("sparse", "absent"):
        exponent = result[f"exponent_{probe_class}"]
        if exponent > max_exponent:
            failures.append(
                f"{probe_class} visit growth exponent {exponent} above "
                f"the {max_exponent} bar (scan-N is 1.0)")
    return failures


def test_multi_tenant(run_once):
    result = run_once(run_multi_tenant, quick=True)
    # Full scale clears 10x+ with exponents near zero (see the committed
    # results/multi_tenant.json baseline); quick mode on a loaded CI box
    # only has to beat the scan by 1.5x with visibly sublinear visits.
    assert not _meets_bar(result, 1.5, 0.7), result


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    result = run_multi_tenant(quick=quick)
    failures = _meets_bar(result, min_speedup=1.5 if quick else 5.0,
                          max_exponent=0.7 if quick else 0.5)
    result["pass"] = not failures
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
