"""Gray failure — tail latency through a slow-but-alive replica.

The gray-failure defense's pitch (DESIGN.md §10) is that a replica
which still *answers* — just two orders of magnitude more slowly — is
caught by the latency-aware circuit breaker and hedged attempts, not by
the consecutive-failure ejection machinery (which a slow replica never
trips: every operation eventually succeeds).  This benchmark measures
exactly that claim on a simulated clock (``FaultyNetwork(advance=...)``
drives a fake clock, so every latency below is deterministic wire time,
not host noise):

- **undefended** — a fleet with the default breakers (error-rate only,
  no latency threshold, no hedging) suffers one slow replica per set;
  every write fans out into the stall, so tail latency balloons;
- **defended** — the same topology with a latency-threshold breaker,
  ``p95``-quantile hedged attempts, and per-channel retry budgets; the
  breaker opens on the latency EWMA, the slow replica is shed from the
  fan-out (its writes become hints), and steady-state p99 returns to
  the healthy envelope;
- **recovery** — the stall clears, the breaker's reset timeout admits a
  half-open probe, the convergence proof re-admits the replica, hints
  drain, and an anti-entropy pass certifies bit-identical replicas;
- **retry storm** — a replica goes fully dark; the channel-level retry
  budgets degrade correlated retransmission ladders into fast refusals
  (``budget_denied``) instead of paying full backoff on every op.

Shape claims asserted:
- zero query answers differ from the unsharded oracle in any phase;
- defended steady-state p99 is within 2x of the healthy p99 while the
  undefended fleet's p99 is at least 3x worse than the defended one;
- the breaker cycle is visible in the metrics (opens, half-opens and
  closes all >= 1) and at least one hedged/bounded attempt fired;
- the retry storm trips at least one channel budget refusal;
- after recovery every replica of every set is bit-identical.

CLI:
    PYTHONPATH=src python benchmarks/bench_gray_failure.py \
        [--quick] [--json-out PATH]
"""

from __future__ import annotations

import json
import random
import sys

from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.transport import DeliveryFailed
from repro.persist import ConcurrentSBF
from repro.serve import (
    Deadline,
    DeadlineExceeded,
    MetricsRegistry,
    RemoteShard,
    RetryBudget,
    ShardServer,
    Unavailable,
    block_checksums,
    deadline_scope,
    replicated_fleet,
)

N_SHARDS = 2
RF = 3
M = 1 << 14
K = 4
SEED = 31
SLOW_REPLICA = 0          # the gray replica index, in every set
STORM_REPLICA = 1         # the fully-dark replica of the retry storm
WIRE_LATENCY = 0.0005     # healthy per-frame transit (simulated seconds)
SLOW_SECONDS = 0.025      # the gray replica's extra per-frame stall
OP_DEADLINE = 0.5         # end-to-end budget each driven op runs under
DETECT_OPS = 60           # the detection window right after the stall
                          # begins: every set's breaker trips inside it
EJECT_AFTER = 3
MAX_RETRIES = 3
RESET_TIMEOUT = 5.0       # breaker open -> half-open, simulated seconds
REPAIR_BLOCKS = 64
COORD = "coord"

#: latency-aware breaker: trips when the per-attempt EWMA crosses 20x
#: the healthy round trip, far below the gray replica's ~26ms stall.
BREAKER = {"window": 8, "min_samples": 4, "error_threshold": 0.5,
           "latency_threshold": 0.02, "latency_alpha": 0.5,
           "latency_min_samples": 2, "reset_timeout": RESET_TIMEOUT}


class _FakeClock:
    """Monotonic simulated time; the network and backoff advance it."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _make_filter() -> SpectralBloomFilter:
    return SpectralBloomFilter(M, K, seed=SEED, method="ms",
                               backend="array", hash_family="blocked")


def _build(metrics: MetricsRegistry, clock: _FakeClock, defended: bool):
    """An RF-way remote fleet on one faulty network and one fake clock."""
    network = FaultyNetwork(
        default_policy=FaultPolicy(latency=WIRE_LATENCY, seed=SEED),
        advance=clock.advance)

    def replica_factory(shard: int, replica: int) -> RemoteShard:
        server = ShardServer(ConcurrentSBF(_make_filter()))
        budget = RetryBudget(capacity=4.0, earn_rate=0.5) if defended \
            else None
        return RemoteShard(
            server, network, COORD, f"s{shard}r{replica}",
            channel_options={"max_retries": MAX_RETRIES,
                             "base_backoff": 0.01, "max_backoff": 0.05,
                             "sleep": clock.advance},
            retry_budget=budget, metrics=metrics)

    fleet = replicated_fleet(
        N_SHARDS, M, K, rf=RF, seed=SEED,
        eject_after=EJECT_AFTER, probe_every=1 << 30,
        replica_factory=replica_factory, metrics=metrics,
        breaker=BREAKER if defended else None,
        hedge="p95" if defended else None,
        retry_budget={"capacity": 8.0, "earn_rate": 0.5} if defended
        else None)
    return fleet, network


def _set_policy(network: FaultyNetwork, server: str,
                policy: FaultPolicy | None) -> None:
    network.set_policy(COORD, server, policy)
    network.set_policy(server, COORD, policy)


def _slow(network: FaultyNetwork, server: str, seed: int) -> None:
    _set_policy(network, server, FaultPolicy(
        latency=WIRE_LATENCY, slow=1.0, slow_seconds=SLOW_SECONDS,
        seed=seed))


def _partition(network: FaultyNetwork, server: str, seed: int) -> None:
    _set_policy(network, server, FaultPolicy(drop=1.0, seed=seed))


def _heal(network: FaultyNetwork, server: str) -> None:
    _set_policy(network, server, None)


def _drive(fleet, oracle, rng: random.Random, clock: _FakeClock,
           n_ops: int, pool: list) -> dict:
    """Mixed traffic (30% insert / 70% query) on the simulated clock;
    every op runs under an end-to-end deadline, per-op latency is pure
    wire time."""
    latencies: list[float] = []
    served = refused = wrong = 0
    for _ in range(n_ops):
        write = rng.random() < 0.3 or not pool
        t0 = clock.now
        try:
            with deadline_scope(Deadline(OP_DEADLINE, clock=clock)):
                if write:
                    key = f"k:{rng.randrange(1 << 32)}"
                    count = rng.randint(1, 3)
                    fleet.insert(key, count)
                    oracle.insert(key, count)
                    pool.append(key)
                else:
                    key = rng.choice(pool)
                    if fleet.query(key) != oracle.query(key):
                        wrong += 1
        except (Unavailable, DeliveryFailed, DeadlineExceeded):
            refused += 1
        else:
            served += 1
        latencies.append(clock.now - t0)
    return {"n_ops": n_ops, "served": served, "refused": refused,
            "wrong": wrong, "latencies": latencies}


def _quantile_ms(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index] * 1e3


def _recover(fleet, network, clock: _FakeClock, replica: int) -> None:
    """Heal *replica*'s wire, let the breaker's reset timeout pass, and
    tick until probes re-admit it and drain its hints."""
    for shard in range(N_SHARDS):
        _heal(network, f"s{shard}r{replica}")
    clock.advance(RESET_TIMEOUT + 1.0)
    for rset in fleet.shards:
        for _ in range(4):
            rset.tick()
            if all(r["up"] and not r["hint_depth"] and not r["needs_repair"]
                   for r in rset.health()):
                break
        rset.repair(n_blocks=REPAIR_BLOCKS)


def _sum_counters(metrics: MetricsRegistry, suffix: str) -> int:
    return sum(value for name, value in
               metrics.snapshot()["counters"].items()
               if name.startswith("ha.") and name.endswith(f".{suffix}"))


def _experiment(defended: bool, n_ops: int):
    """healthy -> stall injected -> detection burst -> steady state."""
    clock = _FakeClock()
    metrics = MetricsRegistry(clock=clock)
    fleet, network = _build(metrics, clock, defended)
    oracle = _make_filter()
    rng = random.Random(SEED)
    pool: list = []
    phases: dict[str, dict] = {}
    phases["healthy"] = _drive(fleet, oracle, rng, clock, n_ops, pool)
    for shard in range(N_SHARDS):
        _slow(network, f"s{shard}r{SLOW_REPLICA}", seed=shard)
    # The detection window: hedged reads abandon the straggler and
    # bounded write attempts fail its breaker window, so by the end of
    # it every set has opened the gray replica's breaker.  Its cost is
    # reported as its own phase row — the measured "gray" steady state
    # starts after detection, which is the claim being priced.
    phases["detect"] = _drive(fleet, oracle, rng, clock, DETECT_OPS, pool)
    phases["gray"] = _drive(fleet, oracle, rng, clock, n_ops, pool)
    return {"clock": clock, "metrics": metrics, "fleet": fleet,
            "network": network, "oracle": oracle, "rng": rng,
            "pool": pool, "phases": phases}


def run_gray_failure(quick: bool = False) -> dict:
    n_ops = 150 if quick else 600

    # The control: no latency breaker, no hedging — the gray replica
    # stays in every write fan-out and tail latency balloons.
    undefended = _experiment(defended=False, n_ops=n_ops)

    # The defended fleet: breaker + hedging shed the stall, then the
    # replica heals, is probed back in, and a dark-replica retry storm
    # exercises the channel budgets.
    defended = _experiment(defended=True, n_ops=n_ops)
    clock, fleet, network = (defended["clock"], defended["fleet"],
                             defended["network"])
    phases = defended["phases"]

    _recover(fleet, network, clock, SLOW_REPLICA)
    phases["recovered"] = _drive(fleet, defended["oracle"],
                                 defended["rng"], clock, n_ops,
                                 defended["pool"])

    for shard in range(N_SHARDS):
        _partition(network, f"s{shard}r{STORM_REPLICA}", seed=shard + 7)
    phases["retry storm"] = _drive(fleet, defended["oracle"],
                                   defended["rng"], clock,
                                   max(50, n_ops // 3), defended["pool"])
    # Probe the still-dark replica: the first ladder spends the channel
    # retry budget, after which further probes degrade to fast
    # ``budget_denied`` refusals instead of paying full backoff.
    clock.advance(RESET_TIMEOUT + 1.0)
    for _ in range(4):
        for rset in fleet.shards:
            rset.tick()
    _recover(fleet, network, clock, STORM_REPLICA)

    converged = all(
        len({tuple(block_checksums(replica, REPAIR_BLOCKS))
             for replica in rset.replicas}) == 1
        for rset in fleet.shards)
    audit = defended["rng"].sample(
        defended["pool"], min(200, len(defended["pool"])))
    for key in audit + ["miss:1", "miss:2"]:
        if fleet.query(key) != defended["oracle"].query(key):
            phases["recovered"]["wrong"] += 1

    metrics = defended["metrics"]
    snap = metrics.snapshot()
    budget_denied = sum(stats["budget_denied"]
                        for stats in snap["channels"].values())
    deadline_abandons = sum(stats["deadline_abandons"]
                            for stats in snap["channels"].values())

    wrong = (sum(p["wrong"] for p in phases.values())
             + sum(p["wrong"] for p in undefended["phases"].values()))
    result = {
        "n_shards": N_SHARDS,
        "rf": RF,
        "m": M,
        "k": K,
        "read_consistency": "quorum",
        "write_consistency": "one",
        "slow_seconds": SLOW_SECONDS,
        "wire_latency": WIRE_LATENCY,
        "quick": quick,
        "wrong_answers": wrong,
        "converged_bit_identical": converged,
        "breaker_opens": _sum_counters(metrics, "breaker_opens"),
        "breaker_half_opens": _sum_counters(metrics, "breaker_half_opens"),
        "breaker_closes": _sum_counters(metrics, "breaker_closes"),
        "hedges": _sum_counters(metrics, "hedges"),
        "write_abandons": _sum_counters(metrics, "write_abandons"),
        "hinted": _sum_counters(metrics, "hinted"),
        "budget_refusals": _sum_counters(metrics, "budget_refusals"),
        "deadline_refusals": _sum_counters(metrics, "deadline_refusals"),
        "channel_budget_denied": budget_denied,
        "channel_deadline_abandons": deadline_abandons,
        "undefended_gray_p99_ms": _quantile_ms(
            undefended["phases"]["gray"]["latencies"], 0.99),
    }
    rows = []
    for name, phase in phases.items():
        availability = phase["served"] / phase["n_ops"]
        result[f"{name}_availability".replace(" ", "_")] = availability
        result[f"{name}_p50_ms".replace(" ", "_")] = _quantile_ms(
            phase["latencies"], 0.50)
        result[f"{name}_p99_ms".replace(" ", "_")] = _quantile_ms(
            phase["latencies"], 0.99)
        rows.append((name, phase["n_ops"], phase["served"],
                     phase["refused"], f"{availability:.4f}",
                     f"{_quantile_ms(phase['latencies'], 0.50):.3f}",
                     f"{_quantile_ms(phase['latencies'], 0.99):.3f}"))
    un = undefended["phases"]["gray"]
    rows.append(("gray (undefended)", un["n_ops"], un["served"],
                 un["refused"], f"{un['served'] / un['n_ops']:.4f}",
                 f"{_quantile_ms(un['latencies'], 0.50):.3f}",
                 f"{_quantile_ms(un['latencies'], 0.99):.3f}"))

    table = format_table(
        ["phase", "ops", "served", "refused", "availability",
         "p50 ms", "p99 ms"], rows,
        title=(f"Gray failure ({N_SHARDS} shards x RF={RF}, replica "
               f"r{SLOW_REPLICA} stalls {SLOW_SECONDS * 1e3:.0f}ms/frame, "
               f"simulated clock, {n_ops} ops/phase)"))
    table += (f"wrong answers vs oracle: {result['wrong_answers']}   "
              f"bit-identical after recovery: {converged}\n"
              f"breaker opens/half-opens/closes: "
              f"{result['breaker_opens']}/{result['breaker_half_opens']}/"
              f"{result['breaker_closes']}   hedged+bounded attempts: "
              f"{result['hedges'] + result['write_abandons']}   "
              f"channel budget refusals: {budget_denied}\n")
    write_results("gray_failure", table)
    print(table)
    return result


def _passes(result: dict) -> bool:
    return (result["wrong_answers"] == 0
            and result["converged_bit_identical"]
            and result["gray_p99_ms"] <= 2.0 * result["healthy_p99_ms"]
            and result["undefended_gray_p99_ms"]
            >= 3.0 * result["gray_p99_ms"]
            and result["breaker_opens"] >= 1
            and result["breaker_half_opens"] >= 1
            and result["breaker_closes"] >= 1
            and result["hedges"] + result["write_abandons"] >= 1
            and result["channel_budget_denied"] >= 1
            and result["gray_availability"] >= 0.99
            and result["retry_storm_availability"] >= 0.99)


def test_gray_failure(run_once):
    result = run_once(run_gray_failure)
    # The acceptance bar: a slow-but-alive replica costs at most 2x the
    # healthy p99 once the breaker/hedge defenses engage (the undefended
    # control is >= 3x worse), with zero wrong answers, a full breaker
    # open -> half-open -> close cycle, at least one hedged attempt, at
    # least one fast budget refusal during the storm, and bit-identical
    # replicas after recovery.
    assert result["wrong_answers"] == 0, result
    assert result["converged_bit_identical"], result
    assert result["gray_p99_ms"] <= 2.0 * result["healthy_p99_ms"], result
    assert result["undefended_gray_p99_ms"] >= \
        3.0 * result["gray_p99_ms"], result
    assert result["breaker_opens"] >= 1, result
    assert result["breaker_half_opens"] >= 1, result
    assert result["breaker_closes"] >= 1, result
    assert result["hedges"] + result["write_abandons"] >= 1, result
    assert result["channel_budget_denied"] >= 1, result
    assert result["gray_availability"] >= 0.99, result
    assert result["retry_storm_availability"] >= 0.99, result


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    result = run_gray_failure(quick=quick)
    ok = _passes(result)
    result["pass"] = ok
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_out}")
    if not ok:
        print("FAIL: gray-failure defense below the acceptance bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
