"""Serving throughput — batched sharded path vs naive one-op-at-a-time.

The serving engine's pitch (DESIGN.md §7) is that batching amortises the
per-operation fixed costs: the canonical-key hash, a striped-lock
acquire/release, ``k`` Python-level hash evaluations, and the metrics
update.  This benchmark measures exactly that claim on the array backend:

- **naive** — every operation goes through ``ShardedSBF.insert`` /
  ``ShardedSBF.query`` individually (one routing decision + one lock
  round-trip + ``k`` scalar hashes each);
- **batched** — the same key stream flows through
  ``ShardBatcher.insert_many`` / ``query_many`` in fixed-size batches
  (one lock acquisition per shard per batch, numpy index matrices,
  scatter/gather counter access);
- **replicated** — the batched stream again, but through a
  ``replicated_fleet`` (every shard an RF=3 replica set), pricing the
  write fan-out; the per-replica ``ha.*`` health gauges are scraped
  into the output alongside the throughput numbers.

Shape claims asserted:
- all paths return *identical* query estimates (the routing and
  replication layers are invisible to correctness);
- the batched path is at least 2x faster than the naive path for both
  inserts and queries (in practice the gap is far larger);
- every ``ha.*.up`` gauge reads 1.0 and every hint queue is empty after
  a faultless run.

CLI:
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py \
        [--quick] [--json-out PATH]
"""

from __future__ import annotations

import json
import random
import sys
import time

from repro.bench.tables import format_table, write_results
from repro.serve import ShardBatcher, ShardedSBF, replicated_fleet

N_SHARDS = 4
M = 1 << 16
K = 4
SEED = 17
BATCH = 1024
RF = 3


def _build(seed: int = SEED) -> ShardedSBF:
    return ShardedSBF.create(N_SHARDS, M, K, seed=seed, method="ms",
                             backend="array", hash_family="blocked")


def _keys(n_ops: int, seed: int = SEED) -> list[int]:
    rng = random.Random(seed)
    # Skewed multiplicities (a small hot set) like a real query stream.
    hot = [rng.randrange(1 << 40) for _ in range(max(1, n_ops // 100))]
    return [rng.choice(hot) if rng.random() < 0.3
            else rng.randrange(1 << 40) for _ in range(n_ops)]


def run_serving_throughput(quick: bool = False) -> dict:
    n_ops = 5_000 if quick else 40_000
    keys = _keys(n_ops)

    naive = _build()
    t0 = time.perf_counter()
    for key in keys:
        naive.insert(key)
    naive_insert = time.perf_counter() - t0
    t0 = time.perf_counter()
    naive_estimates = [naive.query(key) for key in keys]
    naive_query = time.perf_counter() - t0

    batched = _build()
    batcher = ShardBatcher(batched)
    t0 = time.perf_counter()
    for lo in range(0, n_ops, BATCH):
        batcher.insert_many(keys[lo:lo + BATCH])
    batched_insert = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched_estimates: list[int] = []
    for lo in range(0, n_ops, BATCH):
        batched_estimates.extend(batcher.query_many(keys[lo:lo + BATCH]))
    batched_query = time.perf_counter() - t0

    if batched_estimates != naive_estimates:
        raise AssertionError(
            "batched and naive paths disagree on query estimates")

    replicated = replicated_fleet(N_SHARDS, M, K, rf=RF, seed=SEED)
    rep_batcher = ShardBatcher(replicated)
    t0 = time.perf_counter()
    for lo in range(0, n_ops, BATCH):
        rep_batcher.insert_many(keys[lo:lo + BATCH])
    replicated_insert = time.perf_counter() - t0
    t0 = time.perf_counter()
    replicated_estimates: list[int] = []
    for lo in range(0, n_ops, BATCH):
        replicated_estimates.extend(
            rep_batcher.query_many(keys[lo:lo + BATCH]))
    replicated_query = time.perf_counter() - t0

    if replicated_estimates != naive_estimates:
        raise AssertionError(
            "replicated and naive paths disagree on query estimates")

    # The per-replica health gauges the HA layer keeps current, scraped
    # from the one registry snapshot (the dashboards' view of the fleet).
    ha_gauges = {name: value for name, value in
                 replicated.metrics.snapshot()["gauges"].items()
                 if name.startswith("ha.")}

    result = {
        "n_ops": n_ops,
        "n_shards": N_SHARDS,
        "m": M,
        "k": K,
        "batch": BATCH,
        "quick": quick,
        "naive_insert_ops_s": n_ops / naive_insert,
        "batched_insert_ops_s": n_ops / batched_insert,
        "insert_speedup": naive_insert / batched_insert,
        "naive_query_ops_s": n_ops / naive_query,
        "batched_query_ops_s": n_ops / batched_query,
        "query_speedup": naive_query / batched_query,
        "rf": RF,
        "replicated_insert_ops_s": n_ops / replicated_insert,
        "replicated_query_ops_s": n_ops / replicated_query,
        "ha_gauges": ha_gauges,
    }
    rows = [
        ("insert", f"{result['naive_insert_ops_s']:,.0f}",
         f"{result['batched_insert_ops_s']:,.0f}",
         f"{result['insert_speedup']:.1f}x",
         f"{result['replicated_insert_ops_s']:,.0f}"),
        ("query", f"{result['naive_query_ops_s']:,.0f}",
         f"{result['batched_query_ops_s']:,.0f}",
         f"{result['query_speedup']:.1f}x",
         f"{result['replicated_query_ops_s']:,.0f}"),
    ]
    table = format_table(
        ["phase", "naive ops/s", "batched ops/s", "speedup",
         f"replicated rf={RF} ops/s"], rows,
        title=(f"Serving throughput ({N_SHARDS} shards, m={M}, k={K}, "
               f"{n_ops} ops, batch={BATCH})"))
    health_rows = [
        (f"shard{s}", f"r{r}",
         ha_gauges[f"ha.shard{s}.r{r}.up"],
         int(ha_gauges[f"ha.shard{s}.r{r}.hint_depth"]),
         ha_gauges[f"ha.shard{s}.r{r}.last_repair"])
        for s in range(N_SHARDS) for r in range(RF)]
    table += "\n" + format_table(
        ["set", "replica", "up", "hint_depth", "last_repair"], health_rows,
        title="Replica health (ha.* gauges) after the replicated run")
    write_results("serving_throughput", table)
    print(table)
    return result


def test_serving_throughput(run_once):
    result = run_once(run_serving_throughput)
    # The acceptance bar: batching buys at least 2x on the array backend.
    # (Measured gaps are ~10-40x; 2x leaves headroom for loaded CI boxes.)
    assert result["insert_speedup"] >= 2.0, result
    assert result["query_speedup"] >= 2.0, result
    # A faultless replicated run leaves every replica up with no hints.
    gauges = result["ha_gauges"]
    assert all(gauges[f"ha.shard{s}.r{r}.up"] == 1.0
               and gauges[f"ha.shard{s}.r{r}.hint_depth"] == 0
               for s in range(N_SHARDS) for r in range(RF)), gauges


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    result = run_serving_throughput(quick=quick)
    ok = result["insert_speedup"] >= 2.0 and result["query_speedup"] >= 2.0
    result["pass"] = ok
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_out}")
    if not ok:
        print("FAIL: batched speedup below the 2x acceptance bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
