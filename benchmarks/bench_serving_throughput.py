"""Serving throughput — batched sharded path vs naive one-op-at-a-time.

The serving engine's pitch (DESIGN.md §7) is that batching amortises the
per-operation fixed costs: the canonical-key hash, a striped-lock
acquire/release, ``k`` Python-level hash evaluations, and the metrics
update.  This benchmark measures exactly that claim on the array backend:

- **naive** — every operation goes through ``ShardedSBF.insert`` /
  ``ShardedSBF.query`` individually (one routing decision + one lock
  round-trip + ``k`` scalar hashes each);
- **batched** — the same key stream flows through
  ``ShardBatcher.insert_many`` / ``query_many`` in fixed-size batches
  (one lock acquisition per shard per batch, numpy index matrices,
  scatter/gather counter access);
- **replicated** — the batched stream again, but through a
  ``replicated_fleet`` (every shard an RF=3 replica set), pricing the
  write fan-out; the per-replica ``ha.*`` health gauges are scraped
  into the output alongside the throughput numbers;
- **engine** — the same stream through the ``ServingEngine`` front door
  (``submit`` → bounded queue → pump), pricing the queue/batching
  round-trip and scraping the request-lifecycle metrics
  (``engine.queue_wait_seconds``, ``engine.shed_total``,
  ``engine.rejected_total``) plus a deliberate overload burst so the
  admission-control counters are exercised, not merely present.

Shape claims asserted:
- all paths return *identical* query estimates (the routing,
  replication, and queueing layers are invisible to correctness);
- the batched path is at least 2x faster than the naive path for both
  inserts and queries (in practice the gap is far larger);
- every ``ha.*.up`` gauge reads 1.0 and every hint queue is empty after
  a faultless run;
- the queue-wait histogram saw every engine-path operation, and the
  overload burst tripped both ``engine.rejected_total`` (reject-new
  policy) and ``engine.shed_total`` (shed-oldest policy).

CLI:
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py \
        [--quick] [--json-out PATH]
"""

from __future__ import annotations

import json
import random
import sys
import time

from repro.bench.tables import format_table, write_results
from repro.serve import (
    Overloaded,
    ServingEngine,
    ShardBatcher,
    ShardedSBF,
    replicated_fleet,
    run_requests,
    shed_oldest,
)

N_SHARDS = 4
M = 1 << 16
K = 4
SEED = 17
BATCH = 1024
RF = 3


def _build(seed: int = SEED) -> ShardedSBF:
    return ShardedSBF.create(N_SHARDS, M, K, seed=seed, method="ms",
                             backend="array", hash_family="blocked")


def _keys(n_ops: int, seed: int = SEED) -> list[int]:
    rng = random.Random(seed)
    # Skewed multiplicities (a small hot set) like a real query stream.
    hot = [rng.randrange(1 << 40) for _ in range(max(1, n_ops // 100))]
    return [rng.choice(hot) if rng.random() < 0.3
            else rng.randrange(1 << 40) for _ in range(n_ops)]


def run_serving_throughput(quick: bool = False) -> dict:
    n_ops = 5_000 if quick else 40_000
    keys = _keys(n_ops)

    naive = _build()
    t0 = time.perf_counter()
    for key in keys:
        naive.insert(key)
    naive_insert = time.perf_counter() - t0
    t0 = time.perf_counter()
    naive_estimates = [naive.query(key) for key in keys]
    naive_query = time.perf_counter() - t0

    batched = _build()
    batcher = ShardBatcher(batched)
    t0 = time.perf_counter()
    for lo in range(0, n_ops, BATCH):
        batcher.insert_many(keys[lo:lo + BATCH])
    batched_insert = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched_estimates: list[int] = []
    for lo in range(0, n_ops, BATCH):
        batched_estimates.extend(batcher.query_many(keys[lo:lo + BATCH]))
    batched_query = time.perf_counter() - t0

    if batched_estimates != naive_estimates:
        raise AssertionError(
            "batched and naive paths disagree on query estimates")

    replicated = replicated_fleet(N_SHARDS, M, K, rf=RF, seed=SEED)
    rep_batcher = ShardBatcher(replicated)
    t0 = time.perf_counter()
    for lo in range(0, n_ops, BATCH):
        rep_batcher.insert_many(keys[lo:lo + BATCH])
    replicated_insert = time.perf_counter() - t0
    t0 = time.perf_counter()
    replicated_estimates: list[int] = []
    for lo in range(0, n_ops, BATCH):
        replicated_estimates.extend(
            rep_batcher.query_many(keys[lo:lo + BATCH]))
    replicated_query = time.perf_counter() - t0

    if replicated_estimates != naive_estimates:
        raise AssertionError(
            "replicated and naive paths disagree on query estimates")

    # The per-replica health gauges the HA layer keeps current, scraped
    # from the one registry snapshot (the dashboards' view of the fleet).
    ha_gauges = {name: value for name, value in
                 replicated.metrics.snapshot()["gauges"].items()
                 if name.startswith("ha.")}

    # Engine front door: the same stream through submit/pump, with the
    # queue bound comfortably above the burst so nothing is refused.
    fronted = _build()
    engine = ServingEngine(fronted, max_queue=2 * BATCH, batch_size=BATCH)
    t0 = time.perf_counter()
    for lo in range(0, n_ops, BATCH):
        run_requests(engine,
                     [("insert", key) for key in keys[lo:lo + BATCH]])
    engine_insert = time.perf_counter() - t0
    t0 = time.perf_counter()
    engine_estimates: list[int] = []
    for lo in range(0, n_ops, BATCH):
        engine_estimates.extend(run_requests(
            engine, [("query", key) for key in keys[lo:lo + BATCH]]))
    engine_query = time.perf_counter() - t0

    if engine_estimates != naive_estimates:
        raise AssertionError(
            "engine and naive paths disagree on query estimates")

    # Overload burst: hammer tiny queues so the admission counters move.
    # reject-new refuses arrivals at the bound (engine.rejected_total);
    # shed-oldest admits them by failing the oldest queued request
    # (engine.shed_total).  Separate engines, one shared registry.
    burst = [("query", key) for key in keys[:4 * BATCH]]
    rejecting = ServingEngine(fronted, max_queue=32, batch_size=16)
    for op in burst:
        try:
            rejecting.submit(*op)
        except Overloaded:
            pass
    rejecting.drain()
    shedding = ServingEngine(fronted, max_queue=32, batch_size=16,
                             policy=shed_oldest)
    for op in burst:
        shedding.submit(*op)
    shedding.drain()

    snap = fronted.metrics.snapshot()
    queue_wait = snap["histograms"]["engine.queue_wait_seconds"]
    engine_metrics = {
        "queue_wait_count": queue_wait["count"],
        "queue_wait_mean_ms": (1e3 * queue_wait["sum"] / queue_wait["count"]
                               if queue_wait["count"] else 0.0),
        "shed_total": snap["counters"].get("engine.shed_total", 0),
        "rejected_total": snap["counters"].get("engine.rejected_total", 0),
        "deadline_expired_total": snap["counters"].get(
            "engine.deadline_expired_total", 0),
    }

    result = {
        "n_ops": n_ops,
        "n_shards": N_SHARDS,
        "m": M,
        "k": K,
        "batch": BATCH,
        "quick": quick,
        "naive_insert_ops_s": n_ops / naive_insert,
        "batched_insert_ops_s": n_ops / batched_insert,
        "insert_speedup": naive_insert / batched_insert,
        "naive_query_ops_s": n_ops / naive_query,
        "batched_query_ops_s": n_ops / batched_query,
        "query_speedup": naive_query / batched_query,
        "rf": RF,
        "replicated_insert_ops_s": n_ops / replicated_insert,
        "replicated_query_ops_s": n_ops / replicated_query,
        "engine_insert_ops_s": n_ops / engine_insert,
        "engine_query_ops_s": n_ops / engine_query,
        "ha_gauges": ha_gauges,
        "engine_metrics": engine_metrics,
    }
    rows = [
        ("insert", f"{result['naive_insert_ops_s']:,.0f}",
         f"{result['batched_insert_ops_s']:,.0f}",
         f"{result['insert_speedup']:.1f}x",
         f"{result['replicated_insert_ops_s']:,.0f}",
         f"{result['engine_insert_ops_s']:,.0f}"),
        ("query", f"{result['naive_query_ops_s']:,.0f}",
         f"{result['batched_query_ops_s']:,.0f}",
         f"{result['query_speedup']:.1f}x",
         f"{result['replicated_query_ops_s']:,.0f}",
         f"{result['engine_query_ops_s']:,.0f}"),
    ]
    table = format_table(
        ["phase", "naive ops/s", "batched ops/s", "speedup",
         f"replicated rf={RF} ops/s", "engine ops/s"], rows,
        title=(f"Serving throughput ({N_SHARDS} shards, m={M}, k={K}, "
               f"{n_ops} ops, batch={BATCH})"))
    engine_rows = [
        ("queue_wait_seconds count", engine_metrics["queue_wait_count"]),
        ("queue_wait mean (ms)",
         f"{engine_metrics['queue_wait_mean_ms']:.4f}"),
        ("shed_total (burst)", engine_metrics["shed_total"]),
        ("rejected_total (burst)", engine_metrics["rejected_total"]),
        ("deadline_expired_total", engine_metrics["deadline_expired_total"]),
    ]
    table += "\n" + format_table(
        ["engine metric", "value"], engine_rows,
        title="Engine request-lifecycle metrics (engine.* scrape)")
    health_rows = [
        (f"shard{s}", f"r{r}",
         ha_gauges[f"ha.shard{s}.r{r}.up"],
         int(ha_gauges[f"ha.shard{s}.r{r}.hint_depth"]),
         ha_gauges[f"ha.shard{s}.r{r}.last_repair"])
        for s in range(N_SHARDS) for r in range(RF)]
    table += "\n" + format_table(
        ["set", "replica", "up", "hint_depth", "last_repair"], health_rows,
        title="Replica health (ha.* gauges) after the replicated run")
    write_results("serving_throughput", table)
    print(table)
    return result


def test_serving_throughput(run_once):
    result = run_once(run_serving_throughput)
    # The acceptance bar: batching buys at least 2x on the array backend.
    # (Measured gaps are ~10-40x; 2x leaves headroom for loaded CI boxes.)
    assert result["insert_speedup"] >= 2.0, result
    assert result["query_speedup"] >= 2.0, result
    # A faultless replicated run leaves every replica up with no hints.
    gauges = result["ha_gauges"]
    assert all(gauges[f"ha.shard{s}.r{r}.up"] == 1.0
               and gauges[f"ha.shard{s}.r{r}.hint_depth"] == 0
               for s in range(N_SHARDS) for r in range(RF)), gauges
    # The request-lifecycle scrape: every engine-path op went through the
    # queue-wait histogram, and the burst tripped both admission counters.
    em = result["engine_metrics"]
    assert em["queue_wait_count"] >= 2 * result["n_ops"], em
    assert em["shed_total"] > 0, em
    assert em["rejected_total"] > 0, em
    assert em["deadline_expired_total"] == 0, em


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    result = run_serving_throughput(quick=quick)
    ok = result["insert_speedup"] >= 2.0 and result["query_speedup"] >= 2.0
    result["pass"] = ok
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_out}")
    if not ok:
        print("FAIL: batched speedup below the 2x acceptance bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
