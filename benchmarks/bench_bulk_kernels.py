"""Bulk-operation kernels — vectorised insert/query vs the scalar loop.

The core claim of the bulk API (DESIGN.md §8): ``insert_many`` /
``query_many`` on the numpy backend are bit-identical to the scalar
``for key: sbf.insert(key)`` path while replacing its per-key Python
costs (canonical hash, ``k`` hash evaluations, counter round-trips) with
a handful of whole-batch array passes.  This benchmark measures the gap
for all three paper methods on two workloads:

- **histogram** — distinct keys with per-key counts, the paper's
  build-from-multiset scenario (``from_counts``); conflict-free for MI,
  so every method runs at full vector speed;
- **stream** — a duplicate-heavy key stream (5x average multiplicity);
  Minimal Increase pays for its conflict-free segmentation here and
  Recurring Minimum for its sequential-observation replay, so this is
  the adversarial end of the speedup range.

Scalar baselines are measured on a fixed-size sample of the stream and
extrapolated linearly (the scalar path is O(n) in Python operations, so
the extrapolation is faithful; running 10^6 scalar inserts for three
methods would dominate the suite's wall-clock for no extra information).

Shape claims asserted:
- bulk query estimates are identical to scalar queries on the same
  filter (exactness spot check; the full differential sweep lives in
  ``tests/test_bulk.py``);
- bulk insert and query beat the scalar loop by at least 2x even in
  quick mode (measured gaps on an idle machine: 10-25x for MS/MI
  inserts at 10^6 keys, recorded in ``results/bulk_kernels.json``).

CLI:
    PYTHONPATH=src python benchmarks/bench_bulk_kernels.py \
        [--quick] [--json-out PATH]
"""

from __future__ import annotations

import json
import platform
import sys
import time

import numpy as np

from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter

K = 4
SEED = 17
#: scalar-loop sample size the O(n) baseline is extrapolated from
SCALAR_SAMPLE = 40_000
METHODS = ("ms", "mi", "rm")


def _workloads(n: int, seed: int = SEED) -> dict[str, tuple[list, list]]:
    rng = np.random.default_rng(seed)
    distinct = (np.arange(n, dtype=np.int64) * 7919 + 13).tolist()
    counts = rng.integers(1, 16, size=n).tolist()
    stream = rng.integers(0, max(1, n // 5), size=n).tolist()
    return {
        "histogram": (distinct, counts),
        "stream": (stream, [1] * n),
    }


def _scalar_insert_time(make_sbf, keys: list, counts: list,
                        n: int) -> float:
    """Best-of-2 scalar sample, extrapolated to *n* operations.

    The sample is two orders of magnitude shorter than the bulk run, so
    a single scheduler hiccup can swing it; taking the best of two fresh
    filters keeps the baseline from flattering the speedup.
    """
    sample = min(SCALAR_SAMPLE, n)
    best = float("inf")
    for _ in range(2):
        sbf = make_sbf()
        t0 = time.perf_counter()
        for key, count in zip(keys[:sample], counts[:sample]):
            sbf.insert(key, count)
        best = min(best, time.perf_counter() - t0)
    return best * (n / sample)


def _scalar_query_time(sbf: SpectralBloomFilter, keys: list,
                       n: int) -> tuple[float, list[int]]:
    sample = min(SCALAR_SAMPLE, n)
    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        estimates = [sbf.query(key) for key in keys[:sample]]
        best = min(best, time.perf_counter() - t0)
    return best * (n / sample), estimates


def run_bulk_kernels(quick: bool = False) -> dict:
    n = 100_000 if quick else 1_000_000
    m = 4 * n
    result: dict = {
        "n": n, "m": m, "k": K, "quick": quick,
        "backend": "numpy",
        "scalar_sample": min(SCALAR_SAMPLE, n),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    rows = []
    for workload, (keys, counts) in _workloads(n).items():
        for method in METHODS:
            make_sbf = lambda: SpectralBloomFilter(
                m, K, method=method, backend="numpy", seed=SEED)
            scalar_insert = _scalar_insert_time(make_sbf, keys, counts, n)
            # Best-of-3 on a fresh filter each time: the first trial pays
            # first-touch page faults on the 4n-counter arrays (and, on
            # small VMs, the frequency/steal hangover of the scalar
            # phase), which can double its wall-clock.
            bulk_insert = float("inf")
            for _ in range(3):
                bulk = make_sbf()
                t0 = time.perf_counter()
                bulk.insert_many(keys, counts)
                bulk_insert = min(bulk_insert, time.perf_counter() - t0)

            scalar_query, expected = _scalar_query_time(bulk, keys, n)
            bulk_query = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                estimates = bulk.query_many(keys)
                bulk_query = min(bulk_query, time.perf_counter() - t0)
            sample = len(expected)
            if estimates[:sample].tolist() != expected:
                raise AssertionError(
                    f"bulk and scalar queries disagree "
                    f"({workload}/{method})")

            entry = {
                "scalar_insert_s": round(scalar_insert, 3),
                "bulk_insert_s": round(bulk_insert, 3),
                "insert_speedup": round(scalar_insert / bulk_insert, 1),
                "scalar_query_s": round(scalar_query, 3),
                "bulk_query_s": round(bulk_query, 3),
                "query_speedup": round(scalar_query / bulk_query, 1),
            }
            result[f"{workload}.{method}"] = entry
            rows.append((workload, method,
                         f"{entry['bulk_insert_s']:.2f}s",
                         f"{entry['insert_speedup']:.1f}x",
                         f"{entry['bulk_query_s']:.2f}s",
                         f"{entry['query_speedup']:.1f}x"))
    table = format_table(
        ["workload", "method", "bulk insert", "speedup",
         "bulk query", "speedup"], rows,
        title=(f"Bulk kernels vs scalar loop (n={n:,}, m={m:,}, k={K}, "
               f"numpy backend; scalar extrapolated from "
               f"{result['scalar_sample']:,} ops)"))
    write_results("bulk_kernels", table)
    print(table)
    return result


def _meets_bar(result: dict, bar: float) -> list[str]:
    """Entries below *bar* x speedup — every workload, every method.

    Since the Recurring-Minimum preamble became a true kernel
    (``observed_add_kernel``) and the stream backend grew chunk-grouped
    bulk hooks, no workload/method pair is exempt: the duplicate-heavy
    stream workload's MI segmentation and RM replay must clear the same
    bar as the conflict-free histogram build.
    """
    failures = []
    for workload in ("histogram", "stream"):
        for method in METHODS:
            entry = result[f"{workload}.{method}"]
            # Queries get half the insert bar: the roadmap target is
            # phrased for inserts, and the query gap is structurally
            # smaller (the scalar query loop has no counter writes to
            # amortise away), so the same bar would gate on VM noise.
            for phase, phase_bar in (("insert", bar), ("query", bar / 2)):
                if entry[f"{phase}_speedup"] < phase_bar:
                    failures.append(
                        f"{workload}.{method}.{phase}: "
                        f"{entry[f'{phase}_speedup']}x < {phase_bar}x")
    return failures


def test_bulk_kernels(run_once):
    result = run_once(run_bulk_kernels, quick=True)
    # The acceptance bar at full scale is 10x for MS/MI (see the
    # committed results/bulk_kernels.json baseline); under pytest we run
    # quick mode and only require 2x so loaded CI boxes stay green.
    assert not _meets_bar(result, 2.0), result


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    json_out = None
    if "--json-out" in argv:
        json_out = argv[argv.index("--json-out") + 1]
    result = run_bulk_kernels(quick=quick)
    failures = _meets_bar(result, 2.0 if quick else 10.0)
    result["pass"] = not failures
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_out}")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
