"""Figure 9 — accuracy in a sliding-window scenario across skews.

Paper setting: M items streamed, only the most recent M/5 tracked (expiring
items explicitly deleted); Zipf skews 0-2, gamma = 0.7, k = 5; both log
additive error and log error ratio are plotted.

Shape claims asserted:
- "The MS and the RM algorithm are much better than the MI algorithm for
  this scenario, with advantage to the RM": MI's error is the largest at
  every skew, and RM's total error ratio is the best;
- MS/RM never produce false negatives; MI does.
"""

import collections

from repro.apps.sliding_window import SlidingWindowSBF
from repro.bench.metrics import (
    additive_error,
    error_ratio,
    false_negative_ratio,
)
from repro.bench.runner import average_trials, bench_scale
from repro.bench.tables import format_table, write_results
from repro.data.streams import insertion_stream

N = 1000
K = 5
GAMMA = 0.7
SKEWS = (0.0, 0.5, 1.0, 1.5, 2.0)
TRIALS = 3
M = round(N * K / GAMMA)


def total_items() -> int:
    return int(10_000 * bench_scale())


def run_window(method: str, z: float, seed: int) -> dict[str, float]:
    total = total_items()
    window = total // 5
    if method == "rm-budget":
        # Same total budget: primary 2M/3 plus the default secondary of
        # half the primary = M/3.
        tracker = SlidingWindowSBF(window=window, m=2 * M // 3, k=K,
                                   method="rm", seed=seed)
    elif method == "rm-extra":
        # Table-1 convention: primary M, secondary M/2 additional.
        tracker = SlidingWindowSBF(window=window, m=M, k=K, method="rm",
                                   seed=seed)
    else:
        tracker = SlidingWindowSBF(window=window, m=M, k=K, method=method,
                                   seed=seed)
    stream = insertion_stream(N, total, z, seed=seed)
    tracker.extend(stream)
    truth = collections.Counter(stream[-window:])
    estimates = {x: tracker.query(x) for x in truth}
    return {
        "additive_error": additive_error(estimates, truth),
        "error_ratio": error_ratio(estimates, truth),
        "false_negative_ratio": false_negative_ratio(estimates, truth),
    }


def run_figure9():
    rows = []
    for z in SKEWS:
        row = [z]
        for method in ("ms", "rm-budget", "rm-extra", "mi"):
            avg = average_trials(
                lambda seed, me=method, zz=z: run_window(me, zz, seed),
                trials=TRIALS, base_seed=900)
            row.extend([avg["additive_error"], avg["error_ratio"],
                        avg["false_negative_ratio"]])
        rows.append(row)
    return rows


def test_figure9(run_once):
    rows = run_once(run_figure9)
    # Row: z, then (E_add, ratio, FN) for ms, rm-budget, rm-extra, mi.
    totals = {"ms": 0.0, "rm_b": 0.0, "rm_x": 0.0, "mi": 0.0}
    for row in rows:
        z = row[0]
        ms_add, ms_r, ms_fn = row[1:4]
        rmb_add, rmb_r, rmb_fn = row[4:7]
        rmx_add, rmx_r, rmx_fn = row[7:10]
        mi_add, mi_r, mi_fn = row[10:13]
        totals["ms"] += ms_r
        totals["rm_b"] += rmb_r
        totals["rm_x"] += rmx_r
        totals["mi"] += mi_r
        # MS and RM: no false negatives under the window's deletions.
        assert ms_fn == 0.0
        assert rmb_fn == 0.0
        assert rmx_fn == 0.0
        # MI degrades under the window: never better than RM's ratio.
        assert mi_r >= rmx_r - 1e-9
        # MI's additive error dwarfs RM's on every skew.
        assert mi_add >= rmx_add

    # "The MS and the RM algorithm are much better than the MI algorithm
    # for this scenario, with advantage to the RM" (Table-1 convention).
    assert totals["mi"] > totals["rm_x"]
    assert totals["rm_x"] <= totals["ms"] + 0.02

    # The paper's magnitude claim: MI's additive error is 1-2 orders of
    # magnitude above RM for some skews; assert >= 5x at the worst point.
    worst = max(row[10] / max(row[7], 1e-6) for row in rows)
    assert worst >= 5.0

    table = format_table(
        ["skew", "MS E_add", "MS ratio", "MS FN",
         "RM(budget) E_add", "RM(budget) ratio", "RM(budget) FN",
         "RM(extra) E_add", "RM(extra) ratio", "RM(extra) FN",
         "MI E_add", "MI ratio", "MI FN"],
        rows,
        title=(f"Figure 9: sliding window (window=M/5, gamma={GAMMA}, "
               f"k={K}, n={N}, M={total_items()}, {TRIALS} trials)"))
    write_results("fig09_sliding_window", table)
