"""Figure 12 — SBF vs chained hash table: build/update/lookup times.

Paper setting: the SBF (k = 5, §4 storage) against the LEDA chained hash
table with the same number of buckets and the same hash functions; the
hash table has "an inherent advantage" (1 probe vs k), but its chains grow
with collisions while the SBF's cost is load-independent.  The paper
observes the table only ~2x faster at large sizes instead of the naive kx.

Shape claims asserted:
- the hash table is faster, but by a bounded factor (< ~3k);
- the SBF's per-op cost is roughly size-independent;
- (paper's diagnosis aid) the table's chains do grow: max chain length
  exceeds the perfectly-uniform expectation.
"""

import random
import time

from repro.bench.runner import bench_scale
from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter
from repro.filters.hashtable import ChainedHashTable

K = 5


def sizes() -> list[int]:
    scale = bench_scale()
    return [int(s * scale) for s in (1000, 4000, 16000)]


def run_one_size(m: int, seed: int = 6):
    rng = random.Random(seed)
    keys = [rng.randrange(m) for _ in range(10 * m)]

    t0 = time.perf_counter()
    sbf = SpectralBloomFilter(m, K, backend="compact", seed=seed)
    sbf_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    for x in keys:
        sbf.insert(x)
    sbf_update = time.perf_counter() - t0
    t0 = time.perf_counter()
    for x in range(m):
        sbf.query(x)
    sbf_lookup = time.perf_counter() - t0

    t0 = time.perf_counter()
    table = ChainedHashTable(m, seed=seed)
    ht_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    for x in keys:
        table.insert(x)
    ht_update = time.perf_counter() - t0
    t0 = time.perf_counter()
    for x in range(m):
        table.query(x)
    ht_lookup = time.perf_counter() - t0

    return {
        "m": m,
        "sbf": (sbf_build, sbf_update, sbf_lookup),
        "ht": (ht_build, ht_update, ht_lookup),
        "max_chain": table.max_chain_length(),
    }


def run_figure12():
    return [run_one_size(m) for m in sizes()]


def test_figure12(run_once):
    results = run_once(run_figure12)

    for res in results:
        sbf_update, ht_update = res["sbf"][1], res["ht"][1]
        sbf_lookup, ht_lookup = res["sbf"][2], res["ht"][2]
        # The table wins, but by a *bounded* factor.  (The paper's C++
        # sees ~2x; our SBF pays the String-Array Index's bit surgery in
        # pure Python on top of the k probes, so the band is wider — what
        # matters is that the gap does not explode with size.)
        assert ht_update < sbf_update
        assert ht_lookup < sbf_lookup
        assert sbf_update / ht_update < 10 * K
        assert sbf_lookup / ht_lookup < 10 * K
        # Collisions exist: chains beyond a perfectly uniform layout.
        assert res["max_chain"] >= 2

    # SBF per-op cost roughly constant across sizes.
    per_op = [res["sbf"][1] / (10 * res["m"]) for res in results]
    assert max(per_op) < 8 * min(per_op)
    # The SBF/table gap stays bounded across sizes (no blow-up).
    ratios = [res["sbf"][1] / res["ht"][1] for res in results]
    assert max(ratios) < 4 * min(ratios)

    table = format_table(
        ["m", "SBF build", "SBF update", "SBF lookup", "HT build",
         "HT update", "HT lookup", "update ratio", "max chain"],
        [[res["m"], *res["sbf"], *res["ht"],
          res["sbf"][1] / res["ht"][1], res["max_chain"]]
         for res in results],
        title=(f"Figure 12: SBF (compact backend, k={K}) vs chained hash "
               f"table, 10m inserts + m lookups (seconds)"))
    write_results("fig12_sbf_vs_hashtable", table)
