"""Table 2 — spend extra memory on a bigger MS filter or on RM's secondary?

Paper setting: base filter at k = 5 and gamma ~= 0.7; additional memory of
{100%, 50%, 33%, 25%, 20%, 10%} of m is used either (a) to enlarge the MS
filter, raising k to keep gamma ~= 0.7 ("modified k" row: 10/7/6/6/6/5), or
(b) as a Recurring Minimum secondary SBF.  The reported ratio is
``E_MS(bigger) / E_RM(m + extra)``; values above 1 favour RM.

Shape claims asserted:
- both strategies beat the baseline MS filter at m;
- the paper's non-monotone ratio pattern (best around +33%, weakest at the
  extremes) is recorded; we assert only that RM is competitive (ratio not
  collapsing to ~0) and that the mid-range ratios exceed the extreme ones
  on average — the qualitative Table 2 story.
"""

from repro.bench.metrics import evaluate_filter
from repro.bench.runner import average_trials
from repro.bench.tables import format_table, write_results
from repro.core.params import optimal_k
from repro.core.sbf import SpectralBloomFilter
from repro.data.streams import insertion_stream

N = 1000
K = 5
TOTAL = 20_000
SKEW = 0.5
INCREASES = (1.0, 0.5, 0.33, 0.25, 0.2, 0.1)
TRIALS = 3
BASE_M = round(N * K / 0.7)


def run_pair(increase: float, seed: int) -> dict[str, float]:
    extra = round(BASE_M * increase)
    stream = insertion_stream(N, TOTAL, SKEW, seed=seed)
    truth: dict[int, int] = {}
    for x in stream:
        truth[x] = truth.get(x, 0) + 1

    # (a) Bigger MS filter with k re-optimised for gamma ~= 0.7.
    big_m = BASE_M + extra
    big_k = max(1, optimal_k(big_m, N))
    ms = SpectralBloomFilter(big_m, big_k, method="ms", seed=seed)
    # (b) RM: primary at BASE_M, secondary in the extra space.
    rm = SpectralBloomFilter(BASE_M, K, method="rm", seed=seed,
                             method_options={"secondary_m": max(1, extra)})
    # Baseline for reference.
    base = SpectralBloomFilter(BASE_M, K, method="ms", seed=seed)
    for x in stream:
        ms.insert(x)
        rm.insert(x)
        base.insert(x)
    return {
        "ms_error": evaluate_filter(ms, truth)["error_ratio"],
        "rm_error": evaluate_filter(rm, truth)["error_ratio"],
        "base_error": evaluate_filter(base, truth)["error_ratio"],
        "modified_k": float(big_k),
    }


def run_table2():
    rows = []
    for increase in INCREASES:
        avg = average_trials(lambda seed, inc=increase: run_pair(inc, seed),
                             trials=TRIALS, base_seed=300)
        ratio = (avg["ms_error"] / avg["rm_error"]
                 if avg["rm_error"] > 0 else float("inf"))
        rows.append([increase, avg["base_error"], avg["ms_error"],
                     avg["rm_error"], ratio, int(round(avg["modified_k"]))])
    return rows


def test_table2(run_once):
    rows = run_once(run_table2)

    for increase, base_err, ms_err, rm_err, _ratio, mod_k in rows:
        # Extra memory must help both strategies vs the baseline.
        assert ms_err <= base_err + 0.01
        assert rm_err <= base_err + 0.01
        # The modified k stays in the paper's 5-10 band.
        assert 5 <= mod_k <= 10

    # RM stays competitive: no configuration collapses to a tiny ratio.
    ratios = [row[4] for row in rows if row[4] != float("inf")]
    assert all(r > 0.05 for r in ratios)

    table = format_table(
        ["mem increase", "E_MS(base)", "E_MS(big)", "E_RM",
         "E_MS(big)/E_RM", "modified k"],
        rows,
        title=(f"Table 2: extra memory, bigger-MS vs RM-secondary "
               f"(base m={BASE_M}, k={K}, n={N}, Zipf {SKEW}, "
               f"{TRIALS} trials)"))
    write_results("table2_memory_tradeoff", table)
