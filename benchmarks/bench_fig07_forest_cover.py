"""Figure 7 — MS vs MI vs RM on the Forest-Cover elevation data.

Paper setting: the UCI Forest Cover Type database, 581 012 records with
1 978 distinct elevation values, indexed by the SBF; additive error and
error ratio vs gamma in ~[0.2, 1.4], k = 5.

Substitution (DESIGN.md §3): the database is unreachable offline, so a
seeded synthetic generator reproduces the count statistics and the
multi-modal Figure 7a shape.  Scaled to 58 101 records (10%) by default;
REPRO_BENCH_SCALE=10 restores the full size.

Shape claims asserted (matching §6.1's reading of the figure):
- results are "consistent with the results over synthetic data-sets":
  MI and RM beat MS, "with a slight advantage to the Minimal Increase";
- all methods deteriorate as gamma grows.
"""

from repro.bench.metrics import evaluate_filter
from repro.bench.runner import bench_scale
from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter
from repro.data.forest import forest_cover_elevations
from repro.data.streams import stream_from_counts

K = 5
GAMMAS = (0.2, 0.4, 0.7, 1.0, 1.4)
N_DISTINCT = 1978


def n_records() -> int:
    return int(58_101 * bench_scale())


def run_forest():
    counts = forest_cover_elevations(n_records=n_records(),
                                     n_distinct=N_DISTINCT, seed=77)
    stream = stream_from_counts(counts, seed=77)
    n = len(counts)
    rows = []
    for gamma in GAMMAS:
        m = round(n * K / gamma)
        row = [gamma]
        for method in ("ms", "rm-budget", "rm-extra", "mi"):
            if method == "rm-budget":
                sbf = SpectralBloomFilter(
                    2 * m // 3, K, method="rm", seed=77,
                    method_options={"secondary_m": m // 3})
            elif method == "rm-extra":
                sbf = SpectralBloomFilter(
                    m, K, method="rm", seed=77,
                    method_options={"secondary_m": m // 2})
            else:
                sbf = SpectralBloomFilter(m, K, method=method, seed=77)
            for value in stream:
                sbf.insert(value)
            metrics = evaluate_filter(sbf, counts)
            row.extend([metrics["additive_error"], metrics["error_ratio"]])
        rows.append(row)
    return rows


def test_figure7(run_once):
    rows = run_once(run_forest)
    # Columns: gamma, then (E_add, ratio) for ms, rm-budget, rm-extra, mi.
    sum_ratio = {"ms": 0.0, "rm_b": 0.0, "rm_x": 0.0, "mi": 0.0}
    for row in rows:
        sum_ratio["ms"] += row[2]
        sum_ratio["rm_b"] += row[4]
        sum_ratio["rm_x"] += row[6]
        sum_ratio["mi"] += row[8]
        # MI dominates MS pointwise (Claim 4 holds on real-shaped data).
        assert row[7] <= row[1] + 1e-9
        assert row[8] <= row[2] + 1e-9

    # "advantage to the Minimal Increase method" over both others.
    assert sum_ratio["mi"] <= sum_ratio["rm_x"] + 1e-9
    assert sum_ratio["mi"] < sum_ratio["ms"]
    # RM in the Table-1 convention beats MS; the shared-budget variant
    # pays for its overloaded primary (recorded in EXPERIMENTS.md).
    assert sum_ratio["rm_x"] < sum_ratio["ms"]
    assert sum_ratio["rm_b"] < 3 * sum_ratio["ms"]

    # Degradation with load.
    assert rows[-1][2] > rows[0][2]

    table = format_table(
        ["gamma", "MS E_add", "MS ratio", "RM(budget) E_add",
         "RM(budget) ratio", "RM(extra) E_add", "RM(extra) ratio",
         "MI E_add", "MI ratio"],
        rows,
        title=(f"Figure 7: Forest-Cover elevation (synthetic substitute), "
               f"{n_records()} records, {N_DISTINCT} distinct, k={K}"))
    write_results("fig07_forest_cover", table)
