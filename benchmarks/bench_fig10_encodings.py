"""Figure 10 — storage of the counter encodings vs average frequency.

Paper setting: counter arrays of SBFs holding data with average item
frequency swept from ~1 to ~100 (log-log axes), comparing Elias coding
against several "steps" configurations and the information-theoretic
baseline ``sum log C_i`` ("Log Counters").

Shape claims asserted:
- for average frequency ~1 ("almost set") the steps methods beat Elias;
- as the average frequency grows, "the Elias encoding improves ... and
  beats the performance of the steps methods" — a crossover exists;
- every encoding stays above the ``sum max(1, log C_i)`` floor.
"""

from repro.bench.tables import format_table, write_results
from repro.core.sbf import SpectralBloomFilter
from repro.data.streams import insertion_stream
from repro.succinct.elias import EliasCodec
from repro.succinct.steps import StepsCodec

N = 2000
K = 5
M = round(N * K / 0.7)
AVERAGE_FREQUENCIES = (1, 2, 5, 10, 30, 100)
# Interpretation of the figure's "1,2" and "2,3" configurations: the
# paper's example zero step ('0' -> counter 0) is kept, and the following
# step payload widths are 1,2 / 2,3 bits respectively.  A config without
# the 1-bit zero cannot beat Elias on "almost set" data, which Figure 10
# shows these configs doing.
CODECS = [EliasCodec(), StepsCodec((0, 0)), StepsCodec((0, 1, 2)),
          StepsCodec((0, 2, 3))]


def counter_array(avg_freq: int, seed: int = 42) -> list[int]:
    """The counter vector of an SBF filled at the requested density."""
    sbf = SpectralBloomFilter(M, K, method="ms", seed=seed)
    for x in insertion_stream(N, N * avg_freq, 0.5, seed=seed):
        sbf.insert(x)
    return list(sbf)


def run_figure10():
    rows = []
    for avg in AVERAGE_FREQUENCIES:
        counters = counter_array(avg)
        log_counters = sum(max(1, c.bit_length()) for c in counters)
        row = [avg, log_counters]
        for codec in CODECS:
            row.append(sum(codec.length(c) for c in counters))
        rows.append(row)
    return rows


def test_figure10(run_once):
    rows = run_once(run_figure10)
    names = [getattr(c, "name") for c in CODECS]

    for row in rows:
        _avg, log_counters, *sizes = row
        # No self-delimiting code beats the raw binary floor.
        assert all(size >= log_counters for size in sizes)

    # Average frequency ~1: every steps config beats Elias (§4.5's
    # "almost set" argument).
    low = rows[0]
    elias_low = low[2]
    for steps_size in low[3:]:
        assert steps_size < elias_low

    # High average frequency: Elias wins against the paper's example
    # steps(0,0) config — the crossover of Figure 10.
    high = rows[-1]
    assert high[2] <= high[3]

    # The crossover exists at some sweep point for steps(0,0).
    flips = [row[2] <= row[3] for row in rows]
    assert flips[0] is False and flips[-1] is True

    table = format_table(
        ["avg freq", "log counters"] + names,
        rows,
        title=(f"Figure 10: encoding sizes in bits over the SBF counter "
               f"array (m={M}, n={N}, k={K}, Zipf 0.5)"))
    write_results("fig10_encodings", table)
