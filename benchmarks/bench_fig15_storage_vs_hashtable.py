"""Figure 15 — index overhead: String-Array Index vs hash-table keys.

Paper setting: both structures must store the counter values; beyond that,
the SAI needs its offset machinery while a hash table must store the keys
themselves to resolve collisions.  Key storage is modelled as
``m log2 m`` (loose) and ``sum_{i<=m} log2 i`` (tight); the SAI's extra
storage is everything except the base counters.  The paper's conclusion:
"a clear advantage to the string-array index".

Shape claims asserted:
- at every size and in both fill states, the SAI's index overhead is below
  the hash table's *tight* key-storage bound;
- the loose bound is above the tight bound (sanity).
"""

import math
import random

from repro.bench.runner import bench_scale
from repro.bench.tables import format_table, write_results
from repro.succinct.string_array import StringArrayIndex


def sizes() -> list[int]:
    scale = bench_scale()
    return [int(s * scale) for s in (1000, 5000, 25000, 100_000)]


def measure(n: int, avg_freq: int, seed: int = 9):
    sai = StringArrayIndex([0] * n)
    if avg_freq:
        rng = random.Random(seed)
        for _ in range(avg_freq * n):
            sai.increment(rng.randrange(n))
    overhead = sai.index_bits() + (
        sai.storage_breakdown()["base_array"] - sai.raw_bits())
    loose = n * math.log2(max(2, n))
    tight = sum(math.log2(i) for i in range(2, n + 1))
    return (n, avg_freq, overhead, tight, loose)


def run_figure15():
    rows = []
    for n in sizes():
        for avg in (0, 10):
            rows.append(measure(n, avg))
    return rows


def test_figure15(run_once):
    rows = run_once(run_figure15)
    for n, avg, overhead, tight, loose in rows:
        assert tight < loose
        # The headline: SAI overhead beats even the tight key bound.  The
        # overhead per item is ~constant while key storage costs log2(n)
        # bits per key, so the advantage kicks in once n is large enough
        # for the shared lookup table to amortise (>= 5000 here).
        if n >= 5000:
            assert overhead < tight, (
                f"n={n}, avg={avg}: SAI overhead {overhead} vs tight key "
                f"storage {tight}")

    # The advantage *grows* with n: overhead/tight shrinks monotonically
    # from the first to the last size in both fill states.
    for state in (0, 10):
        series = [(n, overhead / tight) for n, avg, overhead, tight, _l
                  in rows if avg == state]
        assert series[-1][1] < series[0][1]

    table = format_table(
        ["n", "avg freq", "SAI overhead", "HT keys (sum log i)",
         "HT keys (m log m)"],
        rows,
        title=("Figure 15: index overhead, String-Array Index vs "
               "hash-table key storage (bits)"))
    write_results("fig15_storage_vs_hashtable", table)
